"""Content-addressed cache for sweep cell results.

A sweep cell is a pure function of (corpus, cell parameters, seed, engine):
the per-run random streams are derived from the seed alone, so re-running a
cell over the same corpus always reproduces the same
:class:`~repro.itsys.simulation.SimulationResult`.  That makes the result
safely cacheable under a content address:

    key = sha256(canonical-JSON of {schema, corpus digest, cell params,
                                    seed, engine})

Each cached cell is one pretty-printed JSON file ``<key>.json`` under the
cache directory, so caches can be inspected, diffed, and pruned with ordinary
file tools.  Floats survive the JSON round trip exactly (``json`` emits
``repr``-style shortest round-trip representations), so a cache hit is
bit-for-bit identical to the cold result -- property-tested by
``tests/runner/test_cache.py``.

The corpus digest covers every entry field the simulator reads (CVE id,
publication date, affected OSes, access vector, component class, validity)
*in corpus order*, because pool order determines which entry each
``rng.choice`` draw selects.

Since schema 2 the digest in a cell's key is **scoped** to the part of the
corpus the cell can actually read (:func:`scoped_corpus_digest`): the
configuration-filtered pool, further restricted -- for targeted adversaries
-- to entries affecting at least one of the cell's OSes.  A corpus delta
that never touches a cell's OSes therefore leaves that cell's key (and its
cached bytes) intact, so after an incremental ingest a warm sweep re-runs
*only* the cells named by the snapshot diff
(:meth:`repro.snapshots.diff.SnapshotDiff.touches_group`) instead of the
whole grid.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.classify.filters import ServerConfigurationFilter
from repro.core.enums import ServerConfiguration
from repro.core.models import VulnerabilityEntry
from repro.itsys.simulation import SimulationResult
from repro.obs.metrics import MetricsRegistry
from repro.runner.grid import GridCell
from repro.snapshots.digests import entry_digest as normalized_entry_digest

#: Bump when the cached payload layout or the digest recipe changes.
#: Schema 2: cell keys embed the *scoped* corpus digest (selective
#: invalidation after incremental ingests) instead of the full-corpus one.
CACHE_SCHEMA = 2


def corpus_digest(entries: Iterable[VulnerabilityEntry]) -> str:
    """Deterministic digest of the simulation-relevant corpus content."""
    hasher = hashlib.sha256()
    for entry in entries:
        record = "|".join(
            (
                entry.cve_id,
                entry.published.isoformat(),
                ",".join(sorted(entry.affected_os)),
                entry.cvss.access_vector.value,
                entry.component_class.value if entry.component_class else "",
                entry.validity.value,
            )
        )
        hasher.update(record.encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def scoped_pool(
    entries: Iterable[VulnerabilityEntry],
    os_names: Optional[Sequence[str]] = None,
    configuration: ServerConfiguration = ServerConfiguration.ISOLATED_THIN,
) -> List[VulnerabilityEntry]:
    """The sub-corpus (in corpus order) a sweep cell can observe.

    The simulator's exploitable pool is the configuration-filtered corpus;
    with a targeted adversary it is further restricted to entries affecting
    at least one of the group's OSes (``os_names``).  Pass ``os_names=None``
    for untargeted cells, which observe the whole filtered pool.  Entries
    outside this scope cannot influence the cell's draws or damage, which is
    what makes digests over it safe cache keys.
    """
    admits = ServerConfigurationFilter(configuration).admits
    pool = [entry for entry in entries if admits(entry)]
    if os_names is None:
        return pool
    targets = set(os_names)
    return [entry for entry in pool if entry.affected_os & targets]


def scoped_corpus_digest(
    entries: Iterable[VulnerabilityEntry],
    os_names: Optional[Sequence[str]] = None,
    configuration: ServerConfiguration = ServerConfiguration.ISOLATED_THIN,
    digests: Optional[Dict[int, str]] = None,
) -> str:
    """Digest of the sub-corpus a cell can observe (see :func:`scoped_pool`).

    Hashes the *normalized entry digests* (:func:`repro.snapshots.digests
    .entry_digest`) of the scope's entries in corpus order.  Using the full
    normalized content -- rather than only the simulator-read fields -- keeps
    cache behaviour aligned with snapshot diffs: whenever a delta names a
    cell's OSes, the cell re-runs; whenever it does not, the cell's key (and
    its cached bytes) are untouched.

    ``digests`` optionally maps ``id(entry)`` to a precomputed normalized
    digest; callers hashing many scopes over one corpus (the grid runner)
    pass it so each entry is serialised and hashed once, not once per scope.
    """
    hasher = hashlib.sha256()
    for entry in scoped_pool(entries, os_names, configuration):
        digest = digests.get(id(entry)) if digests is not None else None
        if digest is None:
            digest = normalized_entry_digest(entry)
        hasher.update(digest.encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def cell_key(
    digest: str,
    cell: GridCell,
    seed: int,
    engine: str,
    configuration: str = ServerConfiguration.ISOLATED_THIN.value,
    catalogued: bool = True,
) -> str:
    """Content address of one sweep cell over one corpus.

    Every input that can change a cell's result participates in the key:
    the corpus digest (the runner passes the cell's *scoped* digest, see
    :func:`scoped_corpus_digest`), the cell parameters, the seed, the
    engine, the server-configuration filter (it selects the attacker's
    exploitable pool) and the ``catalogued`` switch (it changes OS-name
    normalisation in the replica group).  Scenario cells contribute their
    normalised scenario parameters through ``cell.params()``; classic cells
    omit the key entirely, so pre-scenario cache entries keep their keys.
    """
    canonical = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "corpus": digest,
            "cell": cell.params(),
            "seed": seed,
            "engine": engine,
            "configuration": configuration,
            "catalogued": catalogued,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def result_to_json(result: SimulationResult) -> Dict[str, object]:
    """JSON-serialisable mapping that round-trips a result exactly."""
    return {
        "name": result.name,
        "os_names": list(result.os_names),
        "runs": result.runs,
        "safety_violation_probability": result.safety_violation_probability,
        "mean_compromised": result.mean_compromised,
        "mean_time_to_violation": result.mean_time_to_violation,
        "liveness_loss_probability": result.liveness_loss_probability,
        "safety_violation_ci": list(result.safety_violation_ci),
        "liveness_loss_ci": list(result.liveness_loss_ci),
    }


def result_from_json(payload: Dict[str, object]) -> SimulationResult:
    """Inverse of :func:`result_to_json`."""
    return SimulationResult(
        name=str(payload["name"]),
        os_names=tuple(payload["os_names"]),  # type: ignore[arg-type]
        runs=int(payload["runs"]),  # type: ignore[call-overload]
        safety_violation_probability=payload["safety_violation_probability"],  # type: ignore[arg-type]
        mean_compromised=payload["mean_compromised"],  # type: ignore[arg-type]
        mean_time_to_violation=payload["mean_time_to_violation"],  # type: ignore[arg-type]
        liveness_loss_probability=payload["liveness_loss_probability"],  # type: ignore[arg-type]
        safety_violation_ci=tuple(payload["safety_violation_ci"]),  # type: ignore[arg-type]
        liveness_loss_ci=tuple(payload["liveness_loss_ci"]),  # type: ignore[arg-type]
    )


class ResultCache:
    """File-backed content-addressed cache of sweep cell results.

    The cache never invalidates by time: keys embed the corpus digest and
    every campaign parameter, so a stale hit is impossible -- a changed
    corpus or parameter simply addresses a different file.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._dir = Path(cache_dir)
        # Tallies live in the (possibly shared) metrics registry so that
        # ``repro sweep --stats`` and the serving stack report warm/cold
        # behaviour from one source; the int properties below preserve the
        # original counter attribute API.
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._events = self._metrics.counter(
            "sweep_cache_events_total",
            "Sweep result-cache lookups and writes.",
            labels=("event",),
        )

    @property
    def hits(self) -> int:
        return int(self._events.value(event="hit"))

    @property
    def misses(self) -> int:
        return int(self._events.value(event="miss"))

    @property
    def writes(self) -> int:
        return int(self._events.value(event="write"))

    @property
    def cache_dir(self) -> Path:
        return self._dir

    def _path(self, key: str) -> Path:
        return self._dir / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result under ``key``, or ``None`` on a miss.

        Unreadable or schema-mismatched files count as misses (and will be
        overwritten on the next :meth:`put`), so cache corruption degrades to
        recomputation rather than failure.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self._events.inc(event="miss")
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA
            or "result" not in payload
        ):
            self._events.inc(event="miss")
            return None
        try:
            result = result_from_json(payload["result"])
        except (KeyError, TypeError, ValueError):
            # Structurally-broken result payloads (hand edits, foreign
            # writers) degrade to recomputation like any other corruption.
            self._events.inc(event="miss")
            return None
        self._events.inc(event="hit")
        return result

    def put(self, key: str, cell: GridCell, result: SimulationResult) -> Path:
        """Store ``result`` under ``key``; returns the written path.

        The write goes through a same-directory temporary file and an atomic
        rename, so concurrent sweeps sharing a cache directory never observe
        half-written JSON.
        """
        self._dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        payload = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "cell": cell.params(),
            "cell_id": cell.cell_id,
            "result": result_to_json(result),
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(text, encoding="utf-8")
        tmp.replace(path)
        self._events.inc(event="write")
        return path
