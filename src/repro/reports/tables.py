"""Recompute and render the paper's tables from a dataset.

Every function takes a :class:`~repro.analysis.dataset.VulnerabilityDataset`
and returns a :class:`TableReport` carrying both the structured rows and the
rendered text, so benchmarks can print the same rows the paper reports and
tests can assert on the structured data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.ksets import KSetAnalysis
from repro.analysis.pairs import PairAnalysis
from repro.analysis.parts import CLASS_ORDER, class_distribution, class_percentages, shared_by_part
from repro.analysis.periods import PeriodAnalysis
from repro.analysis.releases import ReleaseDiversityAnalysis
from repro.core.constants import OS_NAMES, TABLE5_OSES
from repro.core.enums import ComponentClass, ServerConfiguration, ValidityStatus
from repro.reports.export import render_table


@dataclass(frozen=True)
class TableReport:
    """A reproduced table: identifier, column headers, rows and rendered text."""

    table_id: str
    title: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]

    @property
    def text(self) -> str:
        return render_table(self.headers, self.rows, title=f"{self.table_id}: {self.title}")

    def row_map(self) -> Dict[object, Tuple[object, ...]]:
        """Rows keyed by their first column (convenient for lookups in tests)."""
        return {row[0]: row for row in self.rows}


# ---------------------------------------------------------------------------
# Table I -- distribution of OS vulnerabilities in NVD
# ---------------------------------------------------------------------------


def table1(dataset: VulnerabilityDataset, os_names: Sequence[str] = OS_NAMES) -> TableReport:
    """Valid / Unknown / Unspecified / Disputed counts per OS."""
    summary = dataset.validity_summary()
    rows: List[Tuple[object, ...]] = []
    for name in os_names:
        counts = summary.per_os.get(name, {})
        rows.append(
            (
                name,
                counts.get(ValidityStatus.VALID, 0),
                counts.get(ValidityStatus.UNKNOWN, 0),
                counts.get(ValidityStatus.UNSPECIFIED, 0),
                counts.get(ValidityStatus.DISPUTED, 0),
            )
        )
    rows.append(
        (
            "# distinct vuln.",
            summary.distinct.get(ValidityStatus.VALID, 0),
            summary.distinct.get(ValidityStatus.UNKNOWN, 0),
            summary.distinct.get(ValidityStatus.UNSPECIFIED, 0),
            summary.distinct.get(ValidityStatus.DISPUTED, 0),
        )
    )
    return TableReport(
        table_id="Table I",
        title="Distribution of OS vulnerabilities in NVD",
        headers=("OS", "Valid", "Unknown", "Unspecified", "Disputed"),
        rows=tuple(rows),
    )


# ---------------------------------------------------------------------------
# Table II -- vulnerabilities per OS component class
# ---------------------------------------------------------------------------


def table2(dataset: VulnerabilityDataset, os_names: Sequence[str] = OS_NAMES) -> TableReport:
    """Driver / Kernel / System Software / Application counts per OS."""
    distribution = class_distribution(dataset, os_names)
    percentages = class_percentages(dataset)
    rows: List[Tuple[object, ...]] = []
    for name in os_names:
        counts = distribution[name]
        rows.append(
            (
                name,
                counts[ComponentClass.DRIVER],
                counts[ComponentClass.KERNEL],
                counts[ComponentClass.SYSTEM_SOFTWARE],
                counts[ComponentClass.APPLICATION],
                sum(counts.values()),
            )
        )
    rows.append(
        (
            "% Total",
            round(percentages[ComponentClass.DRIVER], 1),
            round(percentages[ComponentClass.KERNEL], 1),
            round(percentages[ComponentClass.SYSTEM_SOFTWARE], 1),
            round(percentages[ComponentClass.APPLICATION], 1),
            "",
        )
    )
    return TableReport(
        table_id="Table II",
        title="Vulnerabilities per OS component class",
        headers=("OS", "Driver", "Kernel", "Sys. Soft.", "App.", "Total"),
        rows=tuple(rows),
    )


# ---------------------------------------------------------------------------
# Table III -- shared vulnerabilities per OS pair under the three filters
# ---------------------------------------------------------------------------


def table3(dataset: VulnerabilityDataset, os_names: Sequence[str] = OS_NAMES) -> TableReport:
    """v(A), v(B) and v(AB) under All / No Applications / No App. and No Local."""
    analysis = PairAnalysis(dataset, os_names)
    full = analysis.table()
    rows: List[Tuple[object, ...]] = []
    for (os_a, os_b), per_configuration in full.items():
        fat = per_configuration[ServerConfiguration.FAT]
        thin = per_configuration[ServerConfiguration.THIN]
        isolated = per_configuration[ServerConfiguration.ISOLATED_THIN]
        rows.append(
            (
                f"{os_a}-{os_b}",
                fat.count_a,
                fat.count_b,
                fat.shared,
                thin.count_a,
                thin.count_b,
                thin.shared,
                isolated.count_a,
                isolated.count_b,
                isolated.shared,
            )
        )
    return TableReport(
        table_id="Table III",
        title="Shared vulnerabilities for every OS pair (1994 to Sept. 2010)",
        headers=(
            "Pair (A-B)",
            "all v(A)",
            "all v(B)",
            "all v(AB)",
            "noapp v(A)",
            "noapp v(B)",
            "noapp v(AB)",
            "isol v(A)",
            "isol v(B)",
            "isol v(AB)",
        ),
        rows=tuple(rows),
    )


# ---------------------------------------------------------------------------
# Table IV -- shared vulnerabilities on isolated thin servers, by part
# ---------------------------------------------------------------------------


def table4(dataset: VulnerabilityDataset, os_names: Sequence[str] = OS_NAMES) -> TableReport:
    """Driver / Kernel / System Software breakdown of isolated-thin shared vulns."""
    breakdown = shared_by_part(dataset, ServerConfiguration.ISOLATED_THIN, os_names)
    rows: List[Tuple[object, ...]] = []
    for (os_a, os_b), parts in breakdown.items():
        total = sum(parts.values())
        rows.append(
            (
                f"{os_a}-{os_b}",
                parts[ComponentClass.DRIVER],
                parts[ComponentClass.KERNEL],
                parts[ComponentClass.SYSTEM_SOFTWARE],
                total,
            )
        )
    return TableReport(
        table_id="Table IV",
        title="Common vulnerabilities on Isolated Thin Servers",
        headers=("OS Pair", "Driver", "Kernel", "Sys. Soft.", "Total"),
        rows=tuple(rows),
    )


# ---------------------------------------------------------------------------
# Table V -- history vs observed period, isolated thin servers
# ---------------------------------------------------------------------------


def table5(
    dataset: VulnerabilityDataset, os_names: Sequence[str] = TABLE5_OSES
) -> TableReport:
    """History (1994-2005) and observed (2006-2010) shared counts per pair."""
    analysis = PeriodAnalysis(dataset)
    table = analysis.pair_table(os_names)
    rows: List[Tuple[object, ...]] = []
    for (os_a, os_b), (history, observed) in table.items():
        rows.append((f"{os_a}-{os_b}", history, observed))
    return TableReport(
        table_id="Table V",
        title="History/observed period results for Isolated Thin Servers",
        headers=("OS Pair", "History 1994-2005", "Observed 2006-2010"),
        rows=tuple(rows),
    )


# ---------------------------------------------------------------------------
# Table VI -- shared vulnerabilities between OS releases
# ---------------------------------------------------------------------------


def table6(dataset: VulnerabilityDataset) -> TableReport:
    """Debian / RedHat release-level shared vulnerability counts."""
    analysis = ReleaseDiversityAnalysis(dataset)
    rows: List[Tuple[object, ...]] = []
    for result in analysis.table6():
        (os_a, version_a), (os_b, version_b) = result.release_a, result.release_b
        rows.append((f"{os_a}{version_a}-{os_b}{version_b}", result.shared))
    return TableReport(
        table_id="Table VI",
        title="Common vulnerabilities between OS releases",
        headers=("OS Versions", "Total"),
        rows=tuple(rows),
    )


# ---------------------------------------------------------------------------
# Section IV-B -- k-set summary
# ---------------------------------------------------------------------------


def ksets_summary(dataset: VulnerabilityDataset, ks: Sequence[int] = (3, 4, 5, 6)) -> TableReport:
    """Vulnerabilities shared by at least k OSes, plus the widest CVEs."""
    analysis = KSetAnalysis(dataset)
    counts = analysis.summary(ks)
    rows: List[Tuple[object, ...]] = [(f">= {k} OSes", count) for k, count in counts.items()]
    for wide in analysis.widest(3):
        rows.append((wide.cve_id, wide.breadth))
    return TableReport(
        table_id="Section IV-B",
        title="Vulnerabilities shared by larger OS groups",
        headers=("Group / CVE", "Count / Breadth"),
        rows=tuple(rows),
    )
