"""SnapshotDrift: Table-1 numbers tracked across dataset snapshots.

The paper's Table I (valid/excluded vulnerability counts per OS) is a
function of one dataset *state*; once the store holds a snapshot chain, the
interesting question becomes how those numbers **drift** as NVD republishes
entries.  :func:`snapshot_drift` time-travels every ledger snapshot
(:meth:`~repro.snapshots.store.SnapshotStore.dataset_at`), recomputes the
Table-1 validity summary on each, and reports the per-OS valid counts side
by side with the deltas between consecutive snapshots -- the incremental
analogue of the static Table-1 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.constants import OS_NAMES
from repro.core.enums import ValidityStatus
from repro.snapshots.store import SnapshotRecord, SnapshotStore


@dataclass(frozen=True)
class SnapshotDriftRow:
    """Table-1 figures of one snapshot."""

    snapshot: SnapshotRecord
    #: Valid entries per OS at this snapshot.
    valid_per_os: Mapping[str, int]
    #: Distinct valid entries at this snapshot.
    distinct_valid: int
    #: Distinct excluded (non-valid) entries at this snapshot.
    distinct_excluded: int


@dataclass(frozen=True)
class SnapshotDriftReport:
    """Table-1 numbers across a snapshot chain, oldest first."""

    rows: Tuple[SnapshotDriftRow, ...]
    os_names: Tuple[str, ...]

    def deltas(self) -> List[Dict[str, int]]:
        """Per-OS valid-count changes between consecutive snapshots.

        One mapping per transition (snapshot ``i`` -> ``i+1``), holding only
        the OSes whose counts moved.
        """
        transitions: List[Dict[str, int]] = []
        for before, after in zip(self.rows, self.rows[1:]):
            delta = {
                name: after.valid_per_os[name] - before.valid_per_os[name]
                for name in self.os_names
                if after.valid_per_os[name] != before.valid_per_os[name]
            }
            transitions.append(delta)
        return transitions

    @property
    def text(self) -> str:
        """Rendered drift table (snapshots as rows, OSes as columns)."""
        headers = ["snapshot", "digest", "valid", "excl", *self.os_names]
        table: List[List[str]] = [headers]
        for row in self.rows:
            table.append(
                [
                    f"#{row.snapshot.snapshot_id}",
                    row.snapshot.short_digest,
                    str(row.distinct_valid),
                    str(row.distinct_excluded),
                    *[str(row.valid_per_os[name]) for name in self.os_names],
                ]
            )
        widths = [
            max(len(line[column]) for line in table)
            for column in range(len(headers))
        ]
        lines = [
            "SnapshotDrift: Table-1 valid counts across snapshots",
            "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        ]
        for line in table[1:]:
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
            )
        for index, delta in enumerate(self.deltas()):
            moved = (
                ", ".join(f"{name}{change:+d}" for name, change in sorted(delta.items()))
                or "no per-OS changes"
            )
            lines.append(
                f"#{self.rows[index].snapshot.snapshot_id} -> "
                f"#{self.rows[index + 1].snapshot.snapshot_id}: {moved}"
            )
        return "\n".join(lines)


def snapshot_drift(
    store: SnapshotStore, os_names: Sequence[str] = OS_NAMES
) -> SnapshotDriftReport:
    """Recompute the Table-1 validity summary at every snapshot of a store."""
    rows: List[SnapshotDriftRow] = []
    for record in store.list():
        dataset = store.dataset_at(record.snapshot_id)
        summary = dataset.validity_summary()
        rows.append(
            SnapshotDriftRow(
                snapshot=record,
                valid_per_os={
                    name: summary.valid_count(name) for name in os_names
                },
                distinct_valid=summary.distinct[ValidityStatus.VALID],
                distinct_excluded=sum(
                    count
                    for status, count in summary.distinct.items()
                    if status is not ValidityStatus.VALID
                ),
            )
        )
    return SnapshotDriftReport(rows=tuple(rows), os_names=tuple(os_names))
