"""Experiment registry: every table and figure of the paper's evaluation.

Each experiment knows how to recompute its result from a dataset and which
published numbers it should be compared against.  The benchmark harness and
EXPERIMENTS.md are generated from this registry, so the per-experiment index
in DESIGN.md, the benchmarks and the documentation cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.ksets import KSetAnalysis
from repro.analysis.metrics import summary_findings
from repro.analysis.pairs import PairAnalysis
from repro.analysis.periods import PeriodAnalysis
from repro.core.enums import ServerConfiguration, ValidityStatus
from repro.reports import figures, tables
from repro.synthetic import calibration as paper


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one reproduced experiment."""

    experiment_id: str
    description: str
    #: Key figures measured from the dataset (kept small and printable).
    measured: Mapping[str, object]
    #: The corresponding numbers published in the paper, for comparison.
    paper_values: Mapping[str, object]
    #: Full rendered artifact (table or figure text).
    rendering: str


@dataclass(frozen=True)
class Experiment:
    """A registered experiment (one table or figure of the paper)."""

    experiment_id: str
    description: str
    bench_target: str
    runner: Callable[[VulnerabilityDataset], ExperimentResult]

    def run(self, dataset: VulnerabilityDataset) -> ExperimentResult:
        return self.runner(dataset)


# ---------------------------------------------------------------------------
# individual experiment runners
# ---------------------------------------------------------------------------


def _run_table1(dataset: VulnerabilityDataset) -> ExperimentResult:
    report = tables.table1(dataset)
    summary = dataset.validity_summary()
    measured = {
        "distinct_valid": summary.distinct[ValidityStatus.VALID],
        "distinct_unknown": summary.distinct[ValidityStatus.UNKNOWN],
        "distinct_unspecified": summary.distinct[ValidityStatus.UNSPECIFIED],
        "distinct_disputed": summary.distinct[ValidityStatus.DISPUTED],
        "solaris_valid": summary.valid_count("Solaris"),
        "windows2000_valid": summary.valid_count("Windows2000"),
    }
    paper_values = {
        "distinct_valid": paper.TABLE1_DISTINCT["valid"],
        "distinct_unknown": paper.TABLE1_DISTINCT["unknown"],
        "distinct_unspecified": paper.TABLE1_DISTINCT["unspecified"],
        "distinct_disputed": paper.TABLE1_DISTINCT["disputed"],
        "solaris_valid": paper.TABLE1["Solaris"][0],
        "windows2000_valid": paper.TABLE1["Windows2000"][0],
    }
    return ExperimentResult("Table I", "Distribution of OS vulnerabilities in NVD",
                            measured, paper_values, report.text)


def _run_table2(dataset: VulnerabilityDataset) -> ExperimentResult:
    report = tables.table2(dataset)
    percentages_row = report.rows[-1]
    measured = {
        "driver_pct": percentages_row[1],
        "kernel_pct": percentages_row[2],
        "syssoft_pct": percentages_row[3],
        "application_pct": percentages_row[4],
    }
    paper_values = dict(
        zip(("driver_pct", "kernel_pct", "syssoft_pct", "application_pct"),
            paper.TABLE2_PERCENTAGES)
    )
    return ExperimentResult("Table II", "Vulnerabilities per OS component class",
                            measured, paper_values, report.text)


def _run_table3(dataset: VulnerabilityDataset) -> ExperimentResult:
    report = tables.table3(dataset)
    analysis = PairAnalysis(dataset)
    isolated = analysis.shared_matrix(ServerConfiguration.ISOLATED_THIN)
    fat = analysis.shared_matrix(ServerConfiguration.FAT)
    measured = {
        "Windows2000-Windows2003 (all)": fat[("Windows2000", "Windows2003")],
        "Windows2000-Windows2003 (isolated)": isolated[("Windows2000", "Windows2003")],
        "Debian-RedHat (all)": fat[("Debian", "RedHat")],
        "Debian-RedHat (isolated)": isolated[("Debian", "RedHat")],
        "pairs_with_zero_isolated": sum(1 for v in isolated.values() if v == 0),
    }
    paper_values = {
        "Windows2000-Windows2003 (all)": paper.TABLE3_PAIRS[paper.pair("Windows2000", "Windows2003")][0],
        "Windows2000-Windows2003 (isolated)": paper.TABLE3_PAIRS[paper.pair("Windows2000", "Windows2003")][2],
        "Debian-RedHat (all)": paper.TABLE3_PAIRS[paper.pair("Debian", "RedHat")][0],
        "Debian-RedHat (isolated)": paper.TABLE3_PAIRS[paper.pair("Debian", "RedHat")][2],
        "pairs_with_zero_isolated": sum(1 for v in paper.TABLE3_PAIRS.values() if v[2] == 0),
    }
    return ExperimentResult("Table III", "Shared vulnerabilities per OS pair under three filters",
                            measured, paper_values, report.text)


def _run_table4(dataset: VulnerabilityDataset) -> ExperimentResult:
    report = tables.table4(dataset)
    rows = report.row_map()
    def row_total(pair_label: str) -> object:
        return rows.get(pair_label, (pair_label, 0, 0, 0, 0))[4]
    measured = {
        "Windows2000-Windows2003": row_total("Windows2000-Windows2003"),
        "OpenBSD-FreeBSD": row_total("OpenBSD-FreeBSD"),
        "Debian-RedHat": row_total("Debian-RedHat"),
        "pairs_listed": len(report.rows),
    }
    paper_values = {
        "Windows2000-Windows2003": sum(paper.TABLE4_PAIRS[paper.pair("Windows2000", "Windows2003")]),
        "OpenBSD-FreeBSD": sum(paper.TABLE4_PAIRS[paper.pair("OpenBSD", "FreeBSD")]),
        "Debian-RedHat": sum(paper.TABLE4_PAIRS[paper.pair("Debian", "RedHat")]),
        "pairs_listed": len(paper.TABLE4_PAIRS),
    }
    return ExperimentResult("Table IV", "Common vulnerabilities on Isolated Thin Servers by part",
                            measured, paper_values, report.text)


def _run_table5(dataset: VulnerabilityDataset) -> ExperimentResult:
    report = tables.table5(dataset)
    analysis = PeriodAnalysis(dataset)
    table = analysis.pair_table()
    measured = {
        "Windows2000-Windows2003 history": table[("Windows2000", "Windows2003")][0],
        "Windows2000-Windows2003 observed": table[("Windows2000", "Windows2003")][1],
        "Debian-RedHat history": table[("Debian", "RedHat")][0],
        "Debian-RedHat observed": table[("Debian", "RedHat")][1],
    }
    key = paper.pair("Windows2000", "Windows2003")
    key2 = paper.pair("Debian", "RedHat")
    paper_values = {
        "Windows2000-Windows2003 history": paper.TABLE5_PAIRS[key][0],
        "Windows2000-Windows2003 observed": paper.TABLE5_PAIRS[key][1],
        "Debian-RedHat history": paper.TABLE5_PAIRS[key2][0],
        "Debian-RedHat observed": paper.TABLE5_PAIRS[key2][1],
    }
    return ExperimentResult("Table V", "History vs observed period, Isolated Thin Servers",
                            measured, paper_values, report.text)


def _run_table6(dataset: VulnerabilityDataset) -> ExperimentResult:
    report = tables.table6(dataset)
    rows = report.row_map()
    measured = {label: rows.get(label, (label, 0))[1] for label in (
        "Debian3.0-Debian4.0", "Debian4.0-RedHat4.0", "Debian4.0-RedHat5.0",
        "Debian2.1-Debian3.0", "RedHat4.0-RedHat5.0",
    )}
    paper_values = {
        "Debian3.0-Debian4.0": 1,
        "Debian4.0-RedHat4.0": 1,
        "Debian4.0-RedHat5.0": 1,
        "Debian2.1-Debian3.0": 0,
        "RedHat4.0-RedHat5.0": 1,
    }
    return ExperimentResult("Table VI", "Common vulnerabilities between OS releases",
                            measured, paper_values, report.text)


def _run_figure2(dataset: VulnerabilityDataset) -> ExperimentResult:
    report = figures.figure2(dataset)
    from repro.analysis.temporal import TemporalAnalysis
    from repro.core.enums import OSFamily

    analysis = TemporalAnalysis(dataset, 1994, 2010)
    measured = {
        "windows_family_correlation": round(analysis.intra_family_correlation(OSFamily.WINDOWS), 2),
        "linux_family_correlation": round(analysis.intra_family_correlation(OSFamily.LINUX), 2),
        "win2000_entries_before_release": len(analysis.entries_before_release("Windows2000")),
    }
    paper_values = {
        "windows_family_correlation": "strong (qualitative)",
        "linux_family_correlation": "strong (qualitative)",
        "win2000_entries_before_release": 7,
    }
    return ExperimentResult("Figure 2", "Temporal distribution of vulnerability publications",
                            measured, paper_values, report.text)


def _run_figure3(dataset: VulnerabilityDataset) -> ExperimentResult:
    report = figures.figure3(dataset)
    analysis = PeriodAnalysis(dataset)
    measured = {}
    for evaluation in analysis.evaluate_paper_configurations():
        measured[f"{evaluation.name} history"] = evaluation.history_count
        measured[f"{evaluation.name} observed"] = evaluation.observed_count
    paper_values = {}
    for name, (history, observed) in paper.FIGURE3.items():
        paper_values[f"{name} history"] = history
        paper_values[f"{name} observed"] = observed
    return ExperimentResult("Figure 3", "Replica configurations, history vs observed",
                            measured, paper_values, report.text)


def _run_ksets(dataset: VulnerabilityDataset) -> ExperimentResult:
    report = tables.ksets_summary(dataset)
    analysis = KSetAnalysis(dataset)
    counts = analysis.summary((3, 4, 5, 6))
    widest = analysis.widest(3)
    measured = {
        ">=3": counts[3], ">=4": counts[4], ">=5": counts[5], ">=6": counts[6],
        "widest_cves": tuple(w.cve_id for w in widest),
    }
    paper_values = {
        ">=3": paper.KSET_TARGETS[3], ">=4": paper.KSET_TARGETS[4], ">=5": paper.KSET_TARGETS[5],
        ">=6": 2 + 1,
        "widest_cves": tuple(sorted(paper.SPECIAL_CVES)),
    }
    return ExperimentResult("Section IV-B", "Vulnerabilities shared by larger OS groups",
                            measured, paper_values, report.text)


def _run_simulation(dataset: VulnerabilityDataset) -> ExperimentResult:
    from repro.itsys.simulation import CompromiseSimulation

    simulation = CompromiseSimulation(
        [entry for entry in dataset if entry.is_valid], seed=20110627
    )
    set1 = ("Windows2003", "Solaris", "Debian", "OpenBSD")
    homogeneous, diverse = simulation.homogeneous_vs_diverse(
        "Debian", set1, runs=60, exploit_rate=1.0, horizon=4.0
    )
    single_homogeneous = simulation.single_exploit_analysis("4xDebian", ("Debian",) * 4)
    single_diverse = simulation.single_exploit_analysis("Set1", set1)
    measured = {
        "P[single exploit defeats homogeneous]": round(
            single_homogeneous.single_attack_defeat_probability, 2
        ),
        "P[single exploit defeats Set1]": round(
            single_diverse.single_attack_defeat_probability, 2
        ),
        "P[safety violated] homogeneous": round(
            homogeneous.safety_violation_probability, 2
        ),
        "P[safety violated] Set1": round(diverse.safety_violation_probability, 2),
        "mean peak compromised homogeneous": round(homogeneous.mean_compromised, 2),
        "mean peak compromised Set1": round(diverse.mean_compromised, 2),
    }
    paper_values = {
        "P[single exploit defeats homogeneous]": 1.0,
        "P[single exploit defeats Set1]": "~0 (qualitative)",
        "P[safety violated] homogeneous": "high (qualitative)",
        "P[safety violated] Set1": "lower (qualitative)",
        "mean peak compromised homogeneous": "n (all replicas)",
        "mean peak compromised Set1": "close to 1 (qualitative)",
    }
    rendering = "\n".join((homogeneous.summary(), diverse.summary()))
    return ExperimentResult(
        "Simulation",
        "Monte-Carlo intrusion-tolerance campaigns (homogeneous vs diverse)",
        measured, paper_values, rendering,
    )


def _run_sweep(dataset: VulnerabilityDataset) -> ExperimentResult:
    from repro.runner import ArrivalSpec, ExperimentGrid, GridRunner

    grid = ExperimentGrid(
        configurations={
            "homogeneous-Debian": ("Debian",) * 4,
            "Set1": ("Windows2003", "Solaris", "Debian", "OpenBSD"),
        },
        recovery_intervals=(None, 2.0),
        arrivals=(ArrivalSpec("poisson"),),
        runs=60,
        exploit_rate=1.0,
        horizon=4.0,
    )
    runner = GridRunner([entry for entry in dataset if entry.is_valid], seed=20110627)
    report = runner.run(grid)
    by_id = {cell.cell.cell_id: cell.result for cell in report.cells}
    homogeneous = by_id["homogeneous-Debian|3f+1|no-recovery|poisson|standard"]
    diverse = by_id["Set1|3f+1|no-recovery|poisson|standard"]
    recovered = by_id["Set1|3f+1|recovery=2|poisson|standard"]
    measured = {
        "cells": len(report.cells),
        "P[safety violated] homogeneous": round(
            homogeneous.safety_violation_probability, 2
        ),
        "P[safety violated] Set1": round(diverse.safety_violation_probability, 2),
        "P[safety violated] Set1 + recovery": round(
            recovered.safety_violation_probability, 2
        ),
    }
    paper_values = {
        "cells": 2 * 2,
        "P[safety violated] homogeneous": "high (qualitative)",
        "P[safety violated] Set1": "lower (qualitative)",
        "P[safety violated] Set1 + recovery": "lowest (qualitative)",
    }
    rendering = "\n".join(cell.result.summary() for cell in report.cells)
    return ExperimentResult(
        "Sweep",
        "Parameter-grid sweep over configurations and recovery intervals",
        measured, paper_values, rendering,
    )


def _run_summary(dataset: VulnerabilityDataset) -> ExperimentResult:
    findings = summary_findings(dataset)
    measured = {
        "fat_to_isolated_reduction_pct": round(findings.fat_to_isolated_reduction_pct, 1),
        "pairs_with_at_most_one_pct": round(findings.pairs_with_at_most_one_pct, 1),
        "driver_share_pct": round(findings.driver_share_pct, 2),
        "top_group": findings.top3_four_os_groups[0] if findings.top3_four_os_groups else (),
    }
    paper_values = {
        "fat_to_isolated_reduction_pct": paper.SUMMARY_FINDINGS["fat_to_isolated_reduction_pct"],
        "pairs_with_at_most_one_pct": f">{paper.SUMMARY_FINDINGS['pairs_with_at_most_one_pct']}",
        "driver_share_pct": f"<{paper.SUMMARY_FINDINGS['driver_share_pct']}",
        "top_group": ("Debian", "OpenBSD", "Solaris", "Windows2003"),
    }
    rendering = "\n".join(f"{key}: {value}" for key, value in measured.items())
    return ExperimentResult("Section IV-E", "Summary of the findings of the study",
                            measured, paper_values, rendering)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

EXPERIMENTS: Dict[str, Experiment] = {
    experiment.experiment_id: experiment
    for experiment in (
        Experiment("Table I", "Distribution of OS vulnerabilities in NVD",
                   "benchmarks/bench_table1.py", _run_table1),
        Experiment("Table II", "Vulnerabilities per OS component class",
                   "benchmarks/bench_table2.py", _run_table2),
        Experiment("Table III", "Shared vulnerabilities per OS pair",
                   "benchmarks/bench_table3.py", _run_table3),
        Experiment("Table IV", "Isolated Thin Server shared vulnerabilities by part",
                   "benchmarks/bench_table4.py", _run_table4),
        Experiment("Table V", "History vs observed period",
                   "benchmarks/bench_table5.py", _run_table5),
        Experiment("Table VI", "Common vulnerabilities between OS releases",
                   "benchmarks/bench_table6.py", _run_table6),
        Experiment("Figure 2", "Temporal distribution of vulnerability publications",
                   "benchmarks/bench_figure2.py", _run_figure2),
        Experiment("Figure 3", "Replica configurations: history vs observed",
                   "benchmarks/bench_figure3.py", _run_figure3),
        Experiment("Section IV-B", "Vulnerabilities shared by larger OS groups",
                   "benchmarks/bench_ksets.py", _run_ksets),
        Experiment("Section IV-E", "Summary findings",
                   "benchmarks/bench_metrics.py", _run_summary),
        Experiment("Simulation", "Monte-Carlo intrusion-tolerance campaigns",
                   "benchmarks/bench_simulation.py", _run_simulation),
        Experiment("Sweep", "Parameter-grid sweep (parallel runner)",
                   "benchmarks/bench_sweep.py", _run_sweep),
    )
}


def run_experiment(experiment_id: str, dataset: VulnerabilityDataset) -> ExperimentResult:
    """Run one registered experiment by its paper identifier."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id].run(dataset)


def run_all(dataset: VulnerabilityDataset) -> List[ExperimentResult]:
    """Run every registered experiment."""
    return [experiment.run(dataset) for experiment in EXPERIMENTS.values()]
