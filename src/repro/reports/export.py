"""Table rendering and CSV export helpers."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

Row = Sequence[object]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Row],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned, monospaced text table.

    >>> print(render_table(("a", "b"), [(1, 2)]))
    a | b
    --+--
    1 | 2
    """
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(header.ljust(width) for header, width in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * width for width in widths))
    for row in materialised:
        padded = [cell.ljust(width) for cell, width in zip(row, widths)]
        lines.append(" | ".join(padded).rstrip())
    return "\n".join(lines)


def to_csv(
    headers: Sequence[str],
    rows: Iterable[Row],
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Serialise rows as CSV text; optionally also write them to ``path``."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    text = buffer.getvalue()
    if path is not None:
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).write_text(text, encoding="utf-8")
    return text


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    symbol: str = "#",
) -> str:
    """A horizontal ASCII bar chart (used in place of matplotlib figures)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not values:
        return ""
    peak = max(max(values), 1e-9)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = symbol * int(round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:g}")
    return "\n".join(lines)
