"""Figure data series (Figure 2 and Figure 3) and their ASCII rendering."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.periods import PeriodAnalysis
from repro.analysis.temporal import TemporalAnalysis
from repro.core.constants import FIGURE3_CONFIGURATIONS
from repro.core.enums import OSFamily
from repro.reports.export import ascii_bars


@dataclass(frozen=True)
class FigureReport:
    """A reproduced figure: identifier, data series and an ASCII rendering."""

    figure_id: str
    title: str
    series: Mapping[str, Mapping[object, float]]

    @property
    def text(self) -> str:
        blocks: List[str] = [f"{self.figure_id}: {self.title}"]
        for name, values in self.series.items():
            labels = [str(key) for key in values]
            blocks.append(name)
            blocks.append(ascii_bars(labels, [float(v) for v in values.values()], width=40))
        return "\n".join(blocks)


def figure2(dataset: VulnerabilityDataset, first_year: int = 1994, last_year: int = 2010) -> FigureReport:
    """Temporal distribution of vulnerability publications per OS family panel."""
    analysis = TemporalAnalysis(dataset, first_year=first_year, last_year=last_year)
    panels = analysis.family_panels()
    series: Dict[str, Dict[object, float]] = {}
    for family, panel in panels.items():
        for os_name, yearly in panel.items():
            series[f"{family.value}/{os_name}"] = {
                year: float(count) for year, count in yearly.items()
            }
    return FigureReport(
        figure_id="Figure 2",
        title="Temporal distribution of vulnerability publication data",
        series=series,
    )


def figure3(
    dataset: VulnerabilityDataset,
    configurations: Mapping[str, Sequence[str]] = FIGURE3_CONFIGURATIONS,
) -> FigureReport:
    """History vs observed common vulnerabilities for the replica configurations."""
    analysis = PeriodAnalysis(dataset)
    history: Dict[object, float] = {}
    observed: Dict[object, float] = {}
    for evaluation in analysis.evaluate_paper_configurations(configurations):
        history[evaluation.name] = float(evaluation.history_count)
        observed[evaluation.name] = float(evaluation.observed_count)
    return FigureReport(
        figure_id="Figure 3",
        title="Shared vulnerabilities of several OS configurations (history vs observed)",
        series={"History": history, "Observed": observed},
    )
