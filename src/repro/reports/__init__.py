"""Report generation: text tables, figure data series and experiment registry.

matplotlib is not available in the reproduction environment, so figures are
emitted as data series plus ASCII bar charts; tables are rendered as aligned
text and as CSV.
"""

from repro.reports.tables import (
    ksets_summary,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.reports.drift import (
    SnapshotDriftReport,
    SnapshotDriftRow,
    snapshot_drift,
)
from repro.reports.figures import figure2, figure3
from repro.reports.experiments import EXPERIMENTS, Experiment, run_experiment
from repro.reports.export import render_table, to_csv

__all__ = [
    "SnapshotDriftReport",
    "SnapshotDriftRow",
    "snapshot_drift",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "ksets_summary",
    "figure2",
    "figure3",
    "EXPERIMENTS",
    "Experiment",
    "run_experiment",
    "render_table",
    "to_csv",
]
