"""Machine-generated reproduction report.

Produces a Markdown paper-vs-measured report from the experiment registry, so
the numbers quoted in EXPERIMENTS.md can be regenerated (and checked) from
the corpus at any time::

    from repro.reports.summary import generate_markdown_report
    print(generate_markdown_report(dataset))

or from the command line::

    python -m repro experiments --markdown
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.dataset import VulnerabilityDataset
from repro.reports.experiments import EXPERIMENTS, ExperimentResult


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    if isinstance(value, tuple):
        return ", ".join(str(item) for item in value)
    return str(value)


def experiment_section(result: ExperimentResult) -> str:
    """One Markdown section with a paper-vs-measured table for an experiment."""
    lines: List[str] = [
        f"### {result.experiment_id} — {result.description}",
        "",
        "| Quantity | Paper | Measured | Match |",
        "|---|---|---|---|",
    ]
    for key, measured in result.measured.items():
        paper = result.paper_values.get(key, "n/a")
        match = "yes" if _format_value(measured) == _format_value(paper) else "≈"
        lines.append(
            f"| {key} | {_format_value(paper)} | {_format_value(measured)} | {match} |"
        )
    lines.append("")
    return "\n".join(lines)


def generate_markdown_report(
    dataset: VulnerabilityDataset,
    experiment_ids: Optional[Sequence[str]] = None,
    title: str = "Reproduction report",
) -> str:
    """Run the selected experiments and render a Markdown comparison report."""
    ids = list(experiment_ids) if experiment_ids is not None else list(EXPERIMENTS)
    unknown = [experiment_id for experiment_id in ids if experiment_id not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment ids: {unknown}")
    sections = [f"# {title}", ""]
    matches = 0
    cells = 0
    rendered: List[str] = []
    for experiment_id in ids:
        result = EXPERIMENTS[experiment_id].run(dataset)
        rendered.append(experiment_section(result))
        for key, measured in result.measured.items():
            cells += 1
            if _format_value(measured) == _format_value(result.paper_values.get(key, "n/a")):
                matches += 1
    sections.append(
        f"{matches} of {cells} compared quantities match the paper exactly; "
        "the remainder agree in shape (see EXPERIMENTS.md for the deviation analysis)."
    )
    sections.append("")
    sections.extend(rendered)
    return "\n".join(sections)
