"""Summary findings of the study (Section IV-E).

Each function recomputes one of the paper's summary claims from a dataset, so
the benchmark harness can print paper-vs-measured values side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.ksets import KSetAnalysis
from repro.analysis.pairs import PairAnalysis
from repro.analysis.parts import class_percentages
from repro.core.enums import ComponentClass, ServerConfiguration


@dataclass(frozen=True)
class SummaryFindings:
    """The numbered findings of Section IV-E, recomputed from a dataset."""

    #: Finding 1: average reduction (%) in shared vulnerabilities per pair
    #: from the Fat Server to the Isolated Thin Server configuration.
    fat_to_isolated_reduction_pct: float
    #: Finding 2: fraction (%) of OS pairs with at most one shared
    #: non-application, remotely-exploitable vulnerability.
    pairs_with_at_most_one_pct: float
    #: Finding 3: the three most diverse four-OS replica groups (isolated thin).
    top3_four_os_groups: Tuple[Tuple[str, ...], ...]
    #: Finding 5: vulnerabilities affecting the most OSes (cve, breadth).
    widest_vulnerabilities: Tuple[Tuple[str, int], ...]
    #: Finding 6: share (%) of Driver vulnerabilities in the whole data set.
    driver_share_pct: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "fat_to_isolated_reduction_pct": self.fat_to_isolated_reduction_pct,
            "pairs_with_at_most_one_pct": self.pairs_with_at_most_one_pct,
            "top3_four_os_groups": self.top3_four_os_groups,
            "widest_vulnerabilities": self.widest_vulnerabilities,
            "driver_share_pct": self.driver_share_pct,
        }


def fat_to_isolated_reduction(dataset: VulnerabilityDataset) -> float:
    """Average per-pair reduction (%) of shared vulnerabilities, Fat -> Isolated Thin."""
    analysis = PairAnalysis(dataset)
    return analysis.reduction_between(
        ServerConfiguration.FAT, ServerConfiguration.ISOLATED_THIN
    )


def pairs_with_at_most_one(dataset: VulnerabilityDataset) -> float:
    """Percentage of OS pairs with <= 1 shared vulnerability (Isolated Thin)."""
    analysis = PairAnalysis(dataset)
    pairs = analysis.pairs()
    if not pairs:
        return 0.0
    low = analysis.pairs_with_at_most(1, ServerConfiguration.ISOLATED_THIN)
    return 100.0 * len(low) / len(pairs)


def top_four_os_groups(
    dataset: VulnerabilityDataset, top: int = 3, history_only: bool = False
) -> List[Tuple[str, ...]]:
    """The most diverse four-OS groups under the Isolated Thin configuration.

    With ``history_only`` the ranking uses only the 1994--2005 data, exactly
    as the paper does when recommending Sets 1--3.
    """
    from repro.analysis.periods import PeriodAnalysis
    from repro.analysis.selection import ReplicaSetSelector
    from repro.core.constants import TABLE5_OSES

    if history_only:
        periods = PeriodAnalysis(dataset)
        selector = ReplicaSetSelector(
            pair_matrix=periods.history_pair_matrix(), candidates=TABLE5_OSES
        )
    else:
        selector = ReplicaSetSelector(dataset=dataset, candidates=TABLE5_OSES)
    return [result.os_names for result in selector.exhaustive(4, top=top)]


def driver_share(dataset: VulnerabilityDataset) -> float:
    """Share (%) of Driver vulnerabilities among distinct valid entries."""
    return class_percentages(dataset)[ComponentClass.DRIVER]


def widest_vulnerabilities(
    dataset: VulnerabilityDataset, top: int = 3
) -> List[Tuple[str, int]]:
    """The vulnerabilities affecting the most studied OSes."""
    analysis = KSetAnalysis(dataset)
    return [(wide.cve_id, wide.breadth) for wide in analysis.widest(top)]


def summary_findings(dataset: VulnerabilityDataset) -> SummaryFindings:
    """Recompute every Section IV-E finding from the dataset."""
    return SummaryFindings(
        fat_to_isolated_reduction_pct=fat_to_isolated_reduction(dataset),
        pairs_with_at_most_one_pct=pairs_with_at_most_one(dataset),
        top3_four_os_groups=tuple(top_four_os_groups(dataset, top=3, history_only=True)),
        widest_vulnerabilities=tuple(widest_vulnerabilities(dataset)),
        driver_share_pct=driver_share(dataset),
    )
