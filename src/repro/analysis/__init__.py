"""The OS-diversity study: all analyses of Section IV of the paper.

Each module maps to one table, figure or sub-study:

* :mod:`repro.analysis.dataset` -- the in-memory analytic view over a set of
  vulnerability entries (validity counts for Table I live here too);
* :mod:`repro.analysis.engine` -- the bitset incidence-matrix engine behind
  the shared-vulnerability primitives (the dataset's default engine; a naive
  set-based engine remains available for cross-checking);
* :mod:`repro.analysis.parts` -- per-component-class counts (Table II) and
  the per-part breakdown of shared vulnerabilities (Table IV);
* :mod:`repro.analysis.temporal` -- yearly publication series per OS and per
  family (Figure 2);
* :mod:`repro.analysis.pairs` -- shared vulnerabilities for every OS pair
  under the three server configurations (Table III);
* :mod:`repro.analysis.ksets` -- vulnerabilities shared by k >= 3 OSes
  (Section IV-B);
* :mod:`repro.analysis.periods` -- the history/observed split and the
  replica-configuration evaluation (Table V, Figure 3);
* :mod:`repro.analysis.releases` -- release-level diversity (Table VI);
* :mod:`repro.analysis.selection` -- replica-set selection strategies
  (Section IV-C);
* :mod:`repro.analysis.metrics` -- the summary findings of Section IV-E;
* :mod:`repro.analysis.discovery` -- vulnerability-discovery model fitting
  (the linear-vs-logistic debate discussed in Section II);
* :mod:`repro.analysis.sensitivity` -- ablations of the study's design
  choices (validity filter, server profiles, split year, corpus seed).
"""

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.engine import IncidenceIndex
from repro.analysis.pairs import PairAnalysis, PairResult
from repro.analysis.parts import class_distribution, shared_by_part
from repro.analysis.temporal import TemporalAnalysis
from repro.analysis.ksets import KSetAnalysis
from repro.analysis.periods import PeriodAnalysis
from repro.analysis.releases import ReleaseDiversityAnalysis
from repro.analysis.selection import ReplicaSetSelector
from repro.analysis.metrics import summary_findings
from repro.analysis.discovery import DiscoveryModelAnalysis
from repro.analysis.sensitivity import SensitivityAnalysis

__all__ = [
    "VulnerabilityDataset",
    "IncidenceIndex",
    "PairAnalysis",
    "PairResult",
    "class_distribution",
    "shared_by_part",
    "TemporalAnalysis",
    "KSetAnalysis",
    "PeriodAnalysis",
    "ReleaseDiversityAnalysis",
    "ReplicaSetSelector",
    "summary_findings",
    "DiscoveryModelAnalysis",
    "SensitivityAnalysis",
]
