"""History vs observed period analysis (Table V, Figure 3, Section IV-C).

The paper splits the data set into a *history* period (1994--2005, two thirds
of the valid vulnerabilities) used to pick replica groups, and an *observed*
period (2006--2010) used to check whether the chosen groups indeed share few
vulnerabilities.
"""

from __future__ import annotations

import datetime as _dt
import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.dataset import VulnerabilityDataset
from repro.core.constants import (
    FIGURE3_CONFIGURATIONS,
    HISTORY_PERIOD,
    OBSERVED_PERIOD,
    TABLE5_OSES,
)
from repro.core.enums import ServerConfiguration

Pair = Tuple[str, str]


@dataclass(frozen=True)
class ConfigurationEvaluation:
    """Figure 3 result for one replica configuration."""

    name: str
    os_names: Tuple[str, ...]
    history_count: int
    observed_count: int

    @property
    def improved_over_history(self) -> bool:
        return self.observed_count <= self.history_count


class PeriodAnalysis:
    """History/observed split of shared vulnerabilities."""

    def __init__(
        self,
        dataset: VulnerabilityDataset,
        configuration: ServerConfiguration = ServerConfiguration.ISOLATED_THIN,
        history_period: Tuple[_dt.date, _dt.date] = HISTORY_PERIOD,
        observed_period: Tuple[_dt.date, _dt.date] = OBSERVED_PERIOD,
    ) -> None:
        if history_period[1] >= observed_period[0]:
            raise ValueError("history period must end before the observed period starts")
        base = dataset.valid().filtered(configuration)
        self._history = base.between(*history_period)
        self._observed = base.between(*observed_period)
        self._configuration = configuration

    # -- datasets -----------------------------------------------------------------

    @property
    def history(self) -> VulnerabilityDataset:
        return self._history

    @property
    def observed(self) -> VulnerabilityDataset:
        return self._observed

    def split_sizes(self) -> Tuple[int, int]:
        """Number of (filtered) vulnerabilities in the history and observed periods."""
        return len(self._history), len(self._observed)

    # -- Table V --------------------------------------------------------------------

    def pair_table(
        self, os_names: Sequence[str] = TABLE5_OSES
    ) -> Dict[Pair, Tuple[int, int]]:
        """(history, observed) shared counts for every pair of the given OSes."""
        table: Dict[Pair, Tuple[int, int]] = {}
        for os_a, os_b in itertools.combinations(os_names, 2):
            table[(os_a, os_b)] = (
                self._history.shared_count((os_a, os_b)),
                self._observed.shared_count((os_a, os_b)),
            )
        return table

    def os_counts(self, os_names: Sequence[str] = TABLE5_OSES) -> Dict[str, Tuple[int, int]]:
        """(history, observed) per-OS vulnerability counts under the configuration."""
        return {
            name: (self._history.count_for(name), self._observed.count_for(name))
            for name in os_names
        }

    # -- Figure 3 ---------------------------------------------------------------------

    def evaluate_configuration(
        self, name: str, os_names: Sequence[str], threshold: int = 2
    ) -> ConfigurationEvaluation:
        """History/observed counts of vulnerabilities compromising a replica group.

        A vulnerability counts against the group when it affects at least
        ``threshold`` of its members (or simply affects the OS for a
        single-OS, non-diverse group), which is how Figure 3 scores the
        configurations.
        """
        history_count = len(self._history.compromising(os_names, threshold))
        observed_count = len(self._observed.compromising(os_names, threshold))
        return ConfigurationEvaluation(
            name=name,
            os_names=tuple(os_names),
            history_count=history_count,
            observed_count=observed_count,
        )

    def evaluate_paper_configurations(
        self,
        configurations: Mapping[str, Sequence[str]] = FIGURE3_CONFIGURATIONS,
    ) -> List[ConfigurationEvaluation]:
        """Evaluate the Figure 3 configurations (Debian-only and Sets 1-4)."""
        return [
            self.evaluate_configuration(name, os_names)
            for name, os_names in configurations.items()
        ]

    # -- selection support ------------------------------------------------------------

    def history_pair_matrix(
        self, os_names: Sequence[str] = TABLE5_OSES
    ) -> Dict[Pair, int]:
        """History-period shared counts, the input to replica-set selection."""
        return {
            pair: counts[0] for pair, counts in self.pair_table(os_names).items()
        }

    def observed_pair_matrix(
        self, os_names: Sequence[str] = TABLE5_OSES
    ) -> Dict[Pair, int]:
        """Observed-period shared counts, used to validate a selection."""
        return {
            pair: counts[1] for pair, counts in self.pair_table(os_names).items()
        }
