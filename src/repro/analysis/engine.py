"""Bitset incidence-matrix engine for shared-vulnerability analytics.

The naive analyses re-intersect Python sets per entry and per OS combination,
which is fine for the paper's 11 OSes but collapses combinatorially on larger
catalogues (a 100-OS catalogue has ~3.9 million 4-OS combinations).  This
module compiles a dataset once into two dual bitset views:

* an **OS mask** per operating system: an arbitrary-precision integer whose
  bit ``e`` is set when entry ``e`` affects that OS (a column of the
  OS x vulnerability incidence matrix);
* an **entry mask** per vulnerability: an integer whose bit ``o`` is set when
  the entry affects OS number ``o`` (the matching row).

With those in hand the core primitives become single machine-level
operations on big integers:

* ``shared_count(oses)``  -> ``popcount(AND over the OS masks)``;
* ``affecting_at_least(k)`` -> ``popcount(entry mask) >= k``;
* the Table III pair matrix -> one AND + popcount per pair;
* ``per_combination_totals(k)`` -> a depth-first fold-AND over the catalogue
  whose partial ANDs are shared between all combinations with a common
  prefix, with an early exit once a partial intersection is empty.

CPython's ``int`` stores 30 bits per digit and ``int.bit_count`` runs in C,
so each AND/popcount over a few-thousand-entry corpus touches only a few
hundred machine words -- near memory bandwidth, no per-entry Python
bytecode.

:class:`repro.analysis.dataset.VulnerabilityDataset` builds an
:class:`IncidenceIndex` lazily and routes its shared-vulnerability
primitives through it by default (``engine="bitset"``); the pre-engine
implementations remain available via ``engine="naive"`` for cross-checking
(see ``tests/analysis/test_engine_equivalence.py`` and the CLI's
``--engine`` flag).

A third engine, :class:`PackedIndex` (``engine="packed"``), stores the same
incidence matrix as numpy ``uint64`` word arrays (vectorised AND +
popcount for intersections) and answers whole pair/k-set workloads by
*column walking*: every entry contributes one count to each ``k``
-combination of the OSes it affects, binned in C with
:func:`combination_counts`, so catalogue-wide matrices cost work
proportional to the set bits rather than to combinations x entries.  It
also supports :meth:`PackedIndex.apply_diff`, which derives the index of a
neighbouring snapshot incrementally instead of recompiling the whole
corpus.  All three engines return identical values in identical order.
"""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.models import VulnerabilityEntry

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.snapshots.diff import SnapshotDiff

Pair = Tuple[str, str]

#: ``np.bitwise_count`` landed in numpy 2.0; older interpreters fall back to
#: an ``unpackbits``-based popcount (same values, one extra expansion pass).
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Ceiling on the combination space (``C(m, k)`` ranks) and on the total
#: combination codes a sparse k-set count may materialise before
#: :meth:`PackedIndex.k_set_totals` falls back to the depth-first fold.
_DENSE_COMBO_CAP = 1 << 26

#: Combination codes are binned in chunks of at most this many codes so the
#: intermediate index arrays stay inside the cache-friendly tens of MB.
_COMBO_CHUNK = 1 << 24


def combination_index_array(m: int, k: int) -> np.ndarray:
    """All strictly-increasing ``k``-tuples over ``range(m)``, lexicographic.

    The ``(C(m, k), k)`` integer array mirror of
    ``itertools.combinations(range(m), k)``, built level by level with
    vectorised extension (no per-combination Python loop), so million-row
    combination tables cost milliseconds.
    """
    if k <= 0 or k > m:
        return np.zeros((0, max(k, 0)), dtype=np.int64)
    combos = np.arange(m - k + 1, dtype=np.int64)[:, None]
    for level in range(1, k):
        # Extend every prefix with each admissible next element; prefixes
        # are in lexicographic order and extensions ascend, so the order
        # is preserved at every level.
        last = combos[:, -1]
        limit = m - k + 1 + level
        extensions = limit - 1 - last
        repeats = np.repeat(np.arange(combos.shape[0]), extensions)
        starts = np.concatenate(([0], np.cumsum(extensions)[:-1]))
        offsets = np.arange(extensions.sum(), dtype=np.int64) - starts[repeats]
        combos = np.concatenate(
            [combos[repeats], (last[repeats] + 1 + offsets)[:, None]], axis=1
        )
    return combos


def packed_set_positions(rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(row, column)`` coordinates of every set bit in packed word rows.

    ``rows`` is an ``(m, W)`` uint64 block from :func:`pack_bool_matrix`.
    Returns two ``int64`` arrays in row-major order.  Only the *non-zero
    words* are expanded (``unpackbits`` over their bytes), so the cost
    scales with the number of set bits, not with ``m * 64 * W`` -- two
    orders of magnitude cheaper than ``np.nonzero`` on the boolean matrix
    for sparse incidence data.
    """
    word_rows, word_columns = np.nonzero(rows)
    if not word_rows.size:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    words = np.ascontiguousarray(rows[word_rows, word_columns])
    # A word's memory bytes are exactly the little-bit-order packbits bytes
    # it was built from, so unpacking them recovers in-word bit positions
    # on any platform.
    bits = np.unpackbits(
        words.view(np.uint8).reshape(-1, 8), axis=1, bitorder="little"
    )
    # flatnonzero over the boolean view hits numpy's fast bool counting
    # path; the flat offsets then split into (word, bit) with two shifts.
    flat = np.flatnonzero(bits.view(bool).ravel())
    word_index = flat >> 6
    bit = flat & 63
    return (
        word_rows[word_index].astype(np.int64),
        word_columns[word_index].astype(np.int64) * 64 + bit,
    )


def combination_counts(
    rows: np.ndarray,
    n_columns: int,
    k: int,
    cap: Optional[int] = None,
) -> Optional[np.ndarray]:
    """Shared counts for every ``k``-combination of the packed ``rows``.

    The result is a flat ``int64`` array of length ``C(m, k)`` in
    ``itertools.combinations(range(m), k)`` order: slot ``r`` holds how
    many of the ``n_columns`` entry columns are set in *all* rows of the
    rank-``r`` combination.

    Instead of AND-ing row combinations (work proportional to
    ``C(m, k) * n_columns``), this walks the *columns*: an entry affecting
    ``b`` rows contributes one count to each of its ``C(b, k)`` row
    combinations, whose lexicographic ranks are computed directly via the
    combinatorial number system and binned with one ``bincount``.  The work
    is proportional to the set bits -- a few per entry on real
    vulnerability corpora -- and every step (bit extraction, rank lookup,
    bincount) runs in C.  If ``cap`` is given and the total number of
    contributed combinations would exceed it (very broad entries), returns
    ``None`` so the caller can fall back to the depth-first fold.
    """
    m = rows.shape[0]
    acc = np.zeros(math.comb(m, k), dtype=np.int64)
    set_rows, set_columns = packed_set_positions(rows)
    if not set_rows.size:
        return acc
    order = np.argsort(set_columns, kind="stable")
    flat = set_rows[order]
    breadths = np.bincount(set_columns, minlength=n_columns)
    classes, class_sizes = np.unique(breadths, return_counts=True)
    if cap is not None:
        total = sum(
            int(count) * math.comb(int(b), k)
            for b, count in zip(classes, class_sizes)
            if b >= k
        )
        if total > cap:
            return None
    # Lexicographic rank of a combination (c_0 < ... < c_k-1) over range(m):
    # ``C(m, k) - 1 - sum_i C(m - 1 - c_i, k - i)`` -- one table lookup and
    # subtraction per digit, no per-combination enumeration of the space.
    # Clamped at the rank-space size: every cell a valid combination can
    # touch is bounded by it, and the clamp keeps huge-k binomials (never
    # looked up) from overflowing int64.
    table = np.array(
        [[min(math.comb(n, r), acc.size) for r in range(k + 1)] for n in range(m)],
        dtype=np.int64,
    )
    top = acc.size - 1
    segment_starts = np.concatenate(([0], np.cumsum(breadths)[:-1]))
    pending: List[np.ndarray] = []
    pending_size = 0
    for b in classes:
        b = int(b)
        if b < k:
            continue
        columns = np.nonzero(breadths == b)[0]
        positions = flat[
            segment_starts[columns][:, None] + np.arange(b, dtype=np.int64)
        ]
        combos = combination_index_array(b, k)
        step = max(1, _COMBO_CHUNK // combos.shape[0])
        for start in range(0, columns.size, step):
            chunk = positions[start : start + step][:, combos]
            ranks = np.full(chunk.shape[:-1], top, dtype=np.int64)
            for digit in range(k):
                ranks -= table[m - 1 - chunk[..., digit], k - digit]
            pending.append(ranks.ravel())
            pending_size += ranks.size
            if pending_size >= _COMBO_CHUNK:
                acc += np.bincount(np.concatenate(pending), minlength=acc.size)
                pending, pending_size = [], 0
    if pending:
        acc += np.bincount(np.concatenate(pending), minlength=acc.size)
    return acc


def word_popcounts(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint64`` array, any shape.

    Uses the vectorised ``np.bitwise_count`` where available and an
    ``unpackbits`` expansion otherwise -- both lookup-free and endianness
    -agnostic (each word is counted whole).
    """
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words)
    as_bytes = np.ascontiguousarray(words).view(np.uint8).reshape(words.shape + (8,))
    return np.unpackbits(as_bytes, axis=-1).sum(axis=-1, dtype=np.uint64)


def pack_bool_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pack an ``(n, m)`` boolean matrix into ``(n, ceil(m/64))`` uint64 rows.

    Bit ``b`` of word ``w`` in a packed row corresponds to column
    ``64*w + b`` of the source matrix (little-endian bit order within each
    byte and native word order across bytes); padding bits beyond ``m`` are
    zero, so popcounts over whole rows never over-count.
    """
    rows, columns = matrix.shape
    words = (columns + 63) // 64
    packed = np.packbits(matrix, axis=1, bitorder="little")
    if packed.shape[1] < words * 8:
        pad = np.zeros((rows, words * 8 - packed.shape[1]), dtype=np.uint8)
        packed = np.concatenate([packed, pad], axis=1)
    return np.ascontiguousarray(packed).view(np.uint64)


class IncidenceIndex:
    """Precompiled OS x vulnerability incidence matrix over integer bitsets.

    The index is immutable and references (does not copy) the entry sequence
    it was built from; bit ``e`` in every OS mask refers to ``entries[e]`` in
    construction order, so decoded entry lists preserve dataset order.
    OS names outside ``os_names`` are ignored at build time and resolve to an
    empty mask at query time, mirroring the naive per-OS index.
    """

    __slots__ = ("_entries", "_os_names", "_os_index", "_os_masks", "_entry_masks")

    def __init__(
        self, entries: Sequence[VulnerabilityEntry], os_names: Sequence[str]
    ) -> None:
        self._entries: Tuple[VulnerabilityEntry, ...] = tuple(entries)
        self._os_names: Tuple[str, ...] = tuple(os_names)
        self._os_index: Dict[str, int] = {
            name: position for position, name in enumerate(self._os_names)
        }
        os_masks = [0] * len(self._os_names)
        entry_masks = [0] * len(self._entries)
        for entry_bit, entry in enumerate(self._entries):
            bit = 1 << entry_bit
            row = 0
            for name in entry.affected_os:
                position = self._os_index.get(name)
                if position is not None:
                    os_masks[position] |= bit
                    row |= 1 << position
            entry_masks[entry_bit] = row
        self._os_masks: Tuple[int, ...] = tuple(os_masks)
        self._entry_masks: Tuple[int, ...] = tuple(entry_masks)

    # -- pickling ---------------------------------------------------------------

    def __getstate__(self) -> Tuple[object, ...]:
        """Explicit pickle support for the ``__slots__`` layout.

        The parallel experiment runner (:mod:`repro.runner`) ships compiled
        state between worker processes, so the compiled index must pickle
        identically on every supported interpreter rather than relying on the
        version-dependent default reduction for slotted classes.
        """
        return (
            self._entries,
            self._os_names,
            self._os_index,
            self._os_masks,
            self._entry_masks,
        )

    def __setstate__(self, state: Tuple[object, ...]) -> None:
        (
            self._entries,
            self._os_names,
            self._os_index,
            self._os_masks,
            self._entry_masks,
        ) = state

    # -- basic accessors --------------------------------------------------------

    @property
    def os_names(self) -> Tuple[str, ...]:
        return self._os_names

    @property
    def entries(self) -> Tuple[VulnerabilityEntry, ...]:
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def os_mask(self, os_name: str) -> int:
        """Bitmask of entries affecting the OS (0 for an uncatalogued name)."""
        position = self._os_index.get(os_name)
        if position is None:
            return 0
        return self._os_masks[position]

    def entry_mask(self, entry_index: int) -> int:
        """Bitmask of catalogued OSes affected by entry ``entry_index``."""
        return self._entry_masks[entry_index]

    def count_for(self, os_name: str) -> int:
        """Number of entries affecting the OS."""
        return self.os_mask(os_name).bit_count()

    def decode(self, mask: int) -> List[VulnerabilityEntry]:
        """Entries selected by an entry bitmask, in dataset order."""
        entries = self._entries
        selected: List[VulnerabilityEntry] = []
        while mask:
            low_bit = mask & -mask
            selected.append(entries[low_bit.bit_length() - 1])
            mask ^= low_bit
        return selected

    # -- shared-vulnerability primitives ---------------------------------------

    def intersection_mask(self, os_names: Sequence[str]) -> int:
        """Fold-AND of the OS masks (0 for an empty name list)."""
        names = iter(os_names)
        try:
            mask = self.os_mask(next(names))
        except StopIteration:
            return 0
        for name in names:
            if not mask:
                return 0
            mask &= self.os_mask(name)
        return mask

    def shared_count(self, os_names: Sequence[str]) -> int:
        """Number of entries affecting *all* the given OSes."""
        return self.intersection_mask(os_names).bit_count()

    def shared_entries(self, os_names: Sequence[str]) -> List[VulnerabilityEntry]:
        """Entries affecting all the given OSes, in dataset order."""
        return self.decode(self.intersection_mask(os_names))

    def breadth(self, entry_index: int) -> int:
        """How many catalogued OSes entry ``entry_index`` affects."""
        return self._entry_masks[entry_index].bit_count()

    def affecting_at_least(self, k: int) -> List[VulnerabilityEntry]:
        """Entries affecting at least ``k`` catalogued OSes, in dataset order."""
        entries = self._entries
        return [
            entries[index]
            for index, row in enumerate(self._entry_masks)
            if row.bit_count() >= k
        ]

    def breadth_histogram(self) -> Dict[int, int]:
        """Histogram of per-entry breadth over the catalogued OSes (breadth >= 1)."""
        histogram: Dict[int, int] = {}
        for row in self._entry_masks:
            breadth = row.bit_count()
            if breadth:
                histogram[breadth] = histogram.get(breadth, 0) + 1
        return dict(sorted(histogram.items()))

    # -- pair and k-set analytics ----------------------------------------------

    def pair_matrix(self, os_names: Sequence[str]) -> Dict[Pair, int]:
        """Shared counts for every unordered pair, in combination order."""
        masks = [(name, self.os_mask(name)) for name in os_names]
        return {
            (name_a, name_b): (mask_a & mask_b).bit_count()
            for (name_a, mask_a), (name_b, mask_b) in itertools.combinations(masks, 2)
        }

    def k_set_totals(self, os_names: Sequence[str], k: int) -> Dict[Tuple[str, ...], int]:
        """Shared counts for every ``k``-combination of ``os_names``.

        Combinations are emitted in ``itertools.combinations(os_names, k)``
        order, zero counts included.  Partial intersections are computed once
        per combination *prefix* and reused for every completion, and once a
        partial AND is empty the remaining combinations under it are filled
        with zero without touching the masks again.
        """
        names = tuple(os_names)
        if not 0 < k <= len(names):
            raise ValueError(f"k must be between 1 and {len(names)}")
        masks = [self.os_mask(name) for name in names]
        totals: Dict[Tuple[str, ...], int] = {}

        def expand(start: int, prefix: Tuple[str, ...], acc: int) -> None:
            depth_left = k - len(prefix)
            if depth_left == 0:
                totals[prefix] = acc.bit_count()
                return
            if depth_left == 1 and acc:
                for index in range(start, len(names)):
                    totals[prefix + (names[index],)] = (acc & masks[index]).bit_count()
                return
            if not acc:
                # The prefix intersection is already empty: every completion
                # shares zero vulnerabilities, no further ANDs needed.  The
                # map/fromkeys pair keeps the (possibly huge) zero fill in C.
                totals.update(
                    dict.fromkeys(
                        map(
                            prefix.__add__,
                            itertools.combinations(names[start:], depth_left),
                        ),
                        0,
                    )
                )
                return
            for index in range(start, len(names) - depth_left + 1):
                expand(index + 1, prefix + (names[index],), acc & masks[index])

        expand(0, (), (1 << len(self._entries)) - 1)
        return totals

    # -- replica-group primitives -----------------------------------------------

    def compromising_entries(
        self, os_names: Sequence[str], threshold: int = 2
    ) -> List[VulnerabilityEntry]:
        """Entries affecting at least ``threshold`` members of a replica group.

        Duplicate names in ``os_names`` count with their multiplicity, like
        the naive per-entry membership sum.
        """
        weights: Dict[int, int] = {}
        union = 0
        for name in os_names:
            position = self._os_index.get(name)
            if position is None:
                continue
            weights[position] = weights.get(position, 0) + 1
            union |= self._os_masks[position]
        if not weights:
            return []
        group = list(weights.items())
        entry_masks = self._entry_masks
        selected = 0
        while union:
            low_bit = union & -union
            union ^= low_bit
            row = entry_masks[low_bit.bit_length() - 1]
            hits = sum(weight for position, weight in group if row >> position & 1)
            if hits >= threshold:
                selected |= low_bit
        return self.decode(selected)


#: ``PackedIndex.apply_diff`` falls back to a from-scratch rebuild once a
#: diff touches more than this fraction of the post-diff corpus -- past
#: that point the column gather saves nothing over the full compile.
PATCH_REBUILD_FRACTION = 0.25


class PackedIndex:
    """Packed-word incidence matrix over numpy ``uint64`` arrays.

    The third engine (``engine="packed"``): the same OS x vulnerability
    incidence matrix as :class:`IncidenceIndex`, stored as

    * a boolean master matrix ``(n_os, n_entries)`` -- the mutable source of
      truth for decoding and incremental column patches, and
    * one packed ``uint64`` word row per OS (``(n_os, ceil(n_entries/64))``,
      via :func:`pack_bool_matrix`) -- the operand of every AND + popcount.

    Queries mirror :class:`IncidenceIndex` exactly -- same values, same
    orderings, same ``ValueError`` messages, unknown OS names resolving to an
    all-zero row -- but the hot paths (pair matrices, k-set totals) count
    whole combination blocks at once: a cached Gram matrix for pairs and a
    column-walking :func:`combination_counts` bincount for k-sets, with
    :func:`word_popcounts` intersections for individual groups.  That is
    what unlocks 500-OS catalogues, where per-combination big-int ANDs are
    interpreter-bound.

    Unlike the bitset index, a packed index can also be *patched*:
    :meth:`apply_diff` derives the index of a neighbouring snapshot from a
    :class:`~repro.snapshots.diff.SnapshotDiff` by gathering untouched
    columns and rebuilding only the changed ones, bit-for-bit equal to a
    from-scratch compile of the post-diff corpus.
    """

    __slots__ = (
        "_entries",
        "_os_names",
        "_os_index",
        "_bool",
        "_rows",
        "_gram",
        "_columns",
    )

    def __init__(
        self, entries: Sequence[VulnerabilityEntry], os_names: Sequence[str]
    ) -> None:
        self._entries: Tuple[VulnerabilityEntry, ...] = tuple(entries)
        self._os_names: Tuple[str, ...] = tuple(os_names)
        self._os_index: Dict[str, int] = {
            name: position for position, name in enumerate(self._os_names)
        }
        columns: Dict[str, int] = {}
        matrix = np.zeros((len(self._os_names), len(self._entries)), dtype=bool)
        for column, entry in enumerate(self._entries):
            columns[entry.cve_id] = column
            for name in entry.affected_os:
                position = self._os_index.get(name)
                if position is not None:
                    matrix[position, column] = True
        self._bool: Optional[np.ndarray] = matrix
        self._rows: np.ndarray = pack_bool_matrix(matrix)
        self._gram: Optional[np.ndarray] = None
        self._columns: Optional[Dict[str, int]] = columns

    @classmethod
    def _from_matrix(
        cls,
        entries: Sequence[VulnerabilityEntry],
        os_names: Sequence[str],
        matrix: Optional[np.ndarray],
        rows: Optional[np.ndarray] = None,
        columns: Optional[Dict[str, int]] = None,
    ) -> "PackedIndex":
        """Wrap already-built incidence arrays (the apply_diff fast paths).

        At least one of ``matrix`` and ``rows`` must be given; the other is
        derived on demand (packed eagerly from ``matrix``, or the boolean
        matrix unpacked lazily from ``rows`` via :meth:`_bool_matrix`).
        ``columns`` carries over a still-valid cve-id -> column map.  All
        arguments must be mutually consistent -- this is an internal
        constructor, not a public API.
        """
        index = cls.__new__(cls)
        index._entries = tuple(entries)
        index._os_names = tuple(os_names)
        index._os_index = {
            name: position for position, name in enumerate(index._os_names)
        }
        index._bool = matrix
        index._rows = pack_bool_matrix(matrix) if rows is None else rows
        index._gram = None
        index._columns = columns
        return index

    def _bool_matrix(self) -> np.ndarray:
        """The boolean incidence matrix, unpacked from the words on demand.

        Word-patched indexes (:meth:`_patch_columns_in_place`) are born
        without a materialised boolean matrix so a patch never touches the
        ``n_os x n_entries`` plane; the first decoding query pays the
        unpack.  The packed words are an exact encoding, so this always
        reproduces the constructor's matrix bit for bit: the words' memory
        bytes *are* the little-order packbits bytes, whatever the platform.
        """
        if self._bool is None:
            if not self._entries:
                self._bool = np.zeros((len(self._os_names), 0), dtype=bool)
            else:
                self._bool = np.unpackbits(
                    np.ascontiguousarray(self._rows).view(np.uint8),
                    axis=1,
                    count=len(self._entries),
                    bitorder="little",
                ).view(bool)
        return self._bool

    def _column_map(self) -> Dict[str, int]:
        """Lazy cve-id -> column map (rebuilt after gather-style patches)."""
        if self._columns is None:
            self._columns = {
                entry.cve_id: column
                for column, entry in enumerate(self._entries)
            }
        return self._columns

    # -- pickling ---------------------------------------------------------------

    def __getstate__(self) -> Tuple[object, ...]:
        """Explicit pickle support for the ``__slots__`` layout.

        Only the entries, catalogue and boolean matrix travel; the word rows
        and the name index are recomputed on arrival so a pickle produced on
        one platform unpacks to an identical index on any other
        (see :meth:`IncidenceIndex.__getstate__` for why this is explicit).
        """
        return (
            self._entries,
            self._os_names,
            np.packbits(self._bool_matrix(), axis=1),
        )

    def __setstate__(self, state: Tuple[object, ...]) -> None:
        entries, os_names, packed_bool = state
        self._entries = entries
        self._os_names = os_names
        self._os_index = {
            name: position for position, name in enumerate(os_names)
        }
        self._bool = np.unpackbits(
            packed_bool, axis=1, count=len(entries)
        ).astype(bool)
        self._rows = pack_bool_matrix(self._bool)
        self._gram = None
        self._columns = None

    # -- basic accessors --------------------------------------------------------

    @property
    def os_names(self) -> Tuple[str, ...]:
        return self._os_names

    @property
    def entries(self) -> Tuple[VulnerabilityEntry, ...]:
        return self._entries

    @property
    def words_per_row(self) -> int:
        """Number of 64-bit words in each packed OS row."""
        return self._rows.shape[1]

    def __len__(self) -> int:
        return len(self._entries)

    def os_row(self, os_name: str) -> np.ndarray:
        """Packed word row of the OS (all-zero for an uncatalogued name)."""
        position = self._os_index.get(os_name)
        if position is None:
            return np.zeros(self._rows.shape[1], dtype=np.uint64)
        return self._rows[position]

    def count_for(self, os_name: str) -> int:
        """Number of entries affecting the OS."""
        return int(word_popcounts(self.os_row(os_name)).sum())

    # -- shared-vulnerability primitives ---------------------------------------

    def _intersection_row(self, os_names: Sequence[str]) -> Optional[np.ndarray]:
        """Fold-AND of packed rows (``None`` for an empty name list)."""
        acc: Optional[np.ndarray] = None
        for name in os_names:
            row = self.os_row(name)
            acc = row if acc is None else acc & row
        return acc

    def shared_count(self, os_names: Sequence[str]) -> int:
        """Number of entries affecting *all* the given OSes."""
        acc = self._intersection_row(tuple(os_names))
        if acc is None:
            return 0
        return int(word_popcounts(acc).sum())

    def shared_entries(self, os_names: Sequence[str]) -> List[VulnerabilityEntry]:
        """Entries affecting all the given OSes, in dataset order."""
        names = tuple(os_names)
        if not names or not self._entries:
            return []
        acc: Optional[np.ndarray] = None
        for name in names:
            position = self._os_index.get(name)
            if position is None:
                return []
            row = self._bool_matrix()[position]
            acc = row if acc is None else acc & row
        entries = self._entries
        return [entries[index] for index in np.nonzero(acc)[0]]

    def breadth(self, entry_index: int) -> int:
        """How many catalogued OSes entry ``entry_index`` affects."""
        return int(self._bool_matrix()[:, entry_index].sum())

    def affecting_at_least(self, k: int) -> List[VulnerabilityEntry]:
        """Entries affecting at least ``k`` catalogued OSes, in dataset order."""
        if not self._entries:
            return []
        counts = self._bool_matrix().sum(axis=0)
        entries = self._entries
        return [entries[index] for index in np.nonzero(counts >= k)[0]]

    def breadth_histogram(self) -> Dict[int, int]:
        """Histogram of per-entry breadth over the catalogued OSes (breadth >= 1)."""
        if not self._entries:
            return {}
        counts = np.bincount(self._bool_matrix().sum(axis=0))
        return {
            breadth: int(count)
            for breadth, count in enumerate(counts)
            if breadth and count
        }

    # -- pair and k-set analytics ----------------------------------------------

    def _gather_rows(self, os_names: Sequence[str]) -> np.ndarray:
        """Packed rows for the names, unknown names as all-zero rows."""
        gathered = np.zeros((len(os_names), self._rows.shape[1]), dtype=np.uint64)
        for slot, name in enumerate(os_names):
            position = self._os_index.get(name)
            if position is not None:
                gathered[slot] = self._rows[position]
        return gathered

    def _pair_gram(self) -> np.ndarray:
        """Symmetric ``(n_os, n_os)`` matrix of catalogue-wide shared counts.

        ``gram[i, j]`` is the number of entries affecting both OS ``i`` and
        OS ``j`` (the diagonal holds per-OS totals).  Computed once per
        index via :func:`combination_counts` -- cost proportional to the set
        bits of the incidence matrix, not to ``n_os**2 * n_entries`` -- and
        cached, so every subsequent pair query is a pure gather.
        """
        if self._gram is None:
            n = len(self._os_names)
            gram = np.zeros((n, n), dtype=np.int64)
            if n >= 2:
                gram[np.triu_indices(n, k=1)] = combination_counts(
                    self._rows, len(self._entries), 2
                )
            gram = gram + gram.T
            if self._entries and n:
                np.fill_diagonal(
                    gram, word_popcounts(self._rows).sum(axis=1, dtype=np.int64)
                )
            self._gram = gram
        return self._gram

    def pair_count_matrix(self, os_names: Sequence[str]) -> np.ndarray:
        """Shared counts for the names as a symmetric ``int64`` matrix.

        Entry ``[a, b]`` is ``shared_count((names[a], names[b]))``; the
        diagonal holds per-OS totals; unknown names yield all-zero rows and
        columns.  This is the array-shaped sibling of :meth:`pair_matrix`
        for consumers (benchmarks, selection) that do not need dict keys.
        """
        names = tuple(os_names)
        gram = self._pair_gram()
        positions = np.fromiter(
            (self._os_index.get(name, -1) for name in names),
            dtype=np.intp,
            count=len(names),
        )
        known = positions >= 0
        counts = gram[np.ix_(np.where(known, positions, 0), np.where(known, positions, 0))]
        counts[~known, :] = 0
        counts[:, ~known] = 0
        return counts

    def pair_matrix(self, os_names: Sequence[str]) -> Dict[Pair, int]:
        """Shared counts for every unordered pair, in combination order.

        One gather from the cached :meth:`_pair_gram` Gram matrix; the dict
        is assembled in a single C-level ``tolist``/``zip`` pass, so the
        per-pair cost is dict insertion, not AND + popcount.
        """
        names = tuple(os_names)
        count = len(names)
        if count < 2:
            return {}
        counts = self.pair_count_matrix(names)
        upper = np.triu_indices(count, k=1)
        return dict(zip(itertools.combinations(names, 2), counts[upper].tolist()))

    def k_set_counts(self, os_names: Sequence[str], k: int) -> np.ndarray:
        """Shared counts of every ``k``-combination as a flat ``int64`` array.

        Values are in ``itertools.combinations(os_names, k)`` order (the
        array-shaped sibling of :meth:`k_set_totals`).  When the mixed-radix
        code space ``len(os_names) ** k`` fits :data:`_DENSE_COMBO_CAP`, the
        counts come from one column-walking :func:`combination_counts` pass;
        otherwise from the depth-first fold.
        """
        names = tuple(os_names)
        m = len(names)
        if not 0 < k <= m:
            raise ValueError(f"k must be between 1 and {m}")
        counts = self._dense_k_set_counts(names, k)
        if counts is not None:
            return counts
        totals = self._k_set_totals_dfs(names, k)
        return np.fromiter(totals.values(), dtype=np.int64, count=len(totals))

    def _dense_k_set_counts(
        self, names: Tuple[str, ...], k: int
    ) -> Optional[np.ndarray]:
        """The bincount path, or ``None`` when the rank space is too large."""
        m = len(names)
        if not self._entries or math.comb(m, k) > _DENSE_COMBO_CAP:
            return None
        return combination_counts(
            self._gather_rows(names),
            len(self._entries),
            k,
            cap=_DENSE_COMBO_CAP,
        )

    def k_set_totals(self, os_names: Sequence[str], k: int) -> Dict[Tuple[str, ...], int]:
        """Shared counts for every ``k``-combination of ``os_names``.

        Identical keys, values, ordering and ``ValueError`` to
        :meth:`IncidenceIndex.k_set_totals`; the counts come from the
        column-walking bincount where it fits and from the vectorised
        depth-first fold otherwise.
        """
        names = tuple(os_names)
        if not 0 < k <= len(names):
            raise ValueError(f"k must be between 1 and {len(names)}")
        counts = self._dense_k_set_counts(names, k)
        if counts is not None:
            return dict(zip(itertools.combinations(names, k), counts.tolist()))
        return self._k_set_totals_dfs(names, k)

    def _k_set_totals_dfs(
        self, names: Tuple[str, ...], k: int
    ) -> Dict[Tuple[str, ...], int]:
        """The shared-prefix depth-first fold over packed rows.

        Same shape as :meth:`IncidenceIndex.k_set_totals` -- combination
        order, zero fill for dead prefixes -- but the innermost level ANDs
        the accumulator against the whole remaining row block at once and
        popcounts it in one vectorised pass.
        """
        rows = self._gather_rows(names)
        totals: Dict[Tuple[str, ...], int] = {}

        def expand(start: int, prefix: Tuple[str, ...], acc: np.ndarray) -> None:
            depth_left = k - len(prefix)
            if depth_left == 0:
                totals[prefix] = int(word_popcounts(acc).sum())
                return
            alive = bool(acc.any())
            if depth_left == 1 and alive:
                block = rows[start:]
                counts = word_popcounts(acc[None, :] & block).sum(
                    axis=-1, dtype=np.int64
                )
                totals.update(
                    zip(
                        map(prefix.__add__, ((name,) for name in names[start:])),
                        counts.tolist(),
                    )
                )
                return
            if not alive:
                totals.update(
                    dict.fromkeys(
                        map(
                            prefix.__add__,
                            itertools.combinations(names[start:], depth_left),
                        ),
                        0,
                    )
                )
                return
            for index in range(start, len(names) - depth_left + 1):
                expand(index + 1, prefix + (names[index],), acc & rows[index])

        full = np.full(
            self._rows.shape[1], 0xFFFFFFFFFFFFFFFF, dtype=np.uint64
        )
        tail_bits = len(self._entries) % 64
        if tail_bits and full.size:
            full[-1] = np.uint64((1 << tail_bits) - 1)
        expand(0, (), full)
        return totals

    # -- replica-group primitives -----------------------------------------------

    def compromising_entries(
        self, os_names: Sequence[str], threshold: int = 2
    ) -> List[VulnerabilityEntry]:
        """Entries affecting at least ``threshold`` members of a replica group.

        Duplicate names count with their multiplicity, exactly like
        :meth:`IncidenceIndex.compromising_entries`; the weighted membership
        sum is one integer matrix-vector product over the boolean rows.
        """
        weights: Dict[int, int] = {}
        for name in os_names:
            position = self._os_index.get(name)
            if position is None:
                continue
            weights[position] = weights.get(position, 0) + 1
        if not weights or not self._entries:
            return []
        positions = np.fromiter(weights.keys(), dtype=np.intp, count=len(weights))
        multiplicity = np.fromiter(
            weights.values(), dtype=np.int64, count=len(weights)
        )
        hits = multiplicity @ self._bool_matrix()[positions]
        # The bitset index only ever scans the group's union, so a
        # sub-one threshold still admits only entries touching the group.
        entries = self._entries
        return [entries[index] for index in np.nonzero(hits >= max(threshold, 1))[0]]

    # -- incremental maintenance -------------------------------------------------

    def apply_diff(self, diff: "SnapshotDiff") -> "PackedIndex":
        """The index of the post-diff corpus, patching only touched columns.

        ``diff`` must describe a change *from* this index's entry set (its
        removed/modified ids name entries present here).  The new corpus is
        the canonical snapshot materialisation -- old entries minus
        removed/modified, plus the diff's post-change entries, sorted by
        ``(published, cve_id)`` -- so the result is **bit-for-bit equal** to
        ``PackedIndex(new_entries, os_names)`` while doing Python-level work
        only for the changed entries: every untouched column is gathered
        from the existing boolean matrix in one vectorised pass and the
        words are repacked in C.

        Three strategies, cheapest first, all bit-for-bit identical:

        * **in-place word patch** -- a modification-only diff that keeps
          every ``(published, cve_id)`` sort key preserves the column order,
          so only the touched columns (and their packed words) are rewritten
          on copies of the parent arrays.  Work is proportional to the diff,
          not the corpus: this is what makes a 1% delta land in about a
          millisecond on a 500-OS catalogue.
        * **column gather** -- additions, removals or date changes reorder
          columns, so every surviving column is gathered from the old matrix
          in one vectorised pass and the words are repacked in C.
        * **full rebuild** -- past :data:`PATCH_REBUILD_FRACTION` of the
          post-diff corpus the gather buys nothing over the constructor.
        """
        if diff.is_empty:
            return self
        if not diff.added and not diff.removed:
            patched = self._patch_columns_in_place(diff)
            if patched is not None:
                return patched
        dropped = {*diff.modified, *diff.removed}
        incoming = [
            diff.new_entries[cve_id] for cve_id in (*diff.added, *diff.modified)
        ]
        tagged: List[Tuple[VulnerabilityEntry, Optional[int]]] = [
            (entry, column)
            for column, entry in enumerate(self._entries)
            if entry.cve_id not in dropped
        ]
        tagged.extend((entry, None) for entry in incoming)
        tagged.sort(key=lambda item: (item[0].published, item[0].cve_id))
        new_entries = tuple(entry for entry, _ in tagged)
        if len(diff.changed) > PATCH_REBUILD_FRACTION * max(1, len(new_entries)):
            return PackedIndex(new_entries, self._os_names)
        matrix = np.zeros((len(self._os_names), len(new_entries)), dtype=bool)
        old_columns = [column for _, column in tagged if column is not None]
        if old_columns:
            kept = np.fromiter(
                (
                    column
                    for column, (_, old) in enumerate(tagged)
                    if old is not None
                ),
                dtype=np.intp,
                count=len(old_columns),
            )
            matrix[:, kept] = self._bool_matrix()[
                :, np.asarray(old_columns, dtype=np.intp)
            ]
        for column, (entry, old) in enumerate(tagged):
            if old is not None:
                continue
            for name in entry.affected_os:
                position = self._os_index.get(name)
                if position is not None:
                    matrix[position, column] = True
        return PackedIndex._from_matrix(new_entries, self._os_names, matrix)

    def _patch_columns_in_place(self, diff: "SnapshotDiff") -> Optional["PackedIndex"]:
        """Patch a modification-only diff without moving any column.

        Applies when every modified entry keeps its ``(published, cve_id)``
        sort key, so the canonical entry order -- and hence every column
        position -- is unchanged.  Touched columns are rewritten on copies
        of the boolean matrix and the packed rows (only the affected 64-bit
        words are repacked), making the cost proportional to the diff size.
        Returns ``None`` when a key changed or names an unknown entry, and
        the caller falls back to the general gather.
        """
        columns = self._column_map()
        replacements: List[Tuple[int, VulnerabilityEntry]] = []
        for cve_id in diff.modified:
            column = columns.get(cve_id)
            if column is None:
                return None
            entry = diff.new_entries[cve_id]
            if entry.published != self._entries[column].published:
                return None
            replacements.append((column, entry))
        entries = list(self._entries)
        rows = self._rows.copy()
        set_positions: List[int] = []
        set_columns: List[int] = []
        for column, entry in replacements:
            entries[column] = entry
            for name in entry.affected_os:
                position = self._os_index.get(name)
                if position is not None:
                    set_positions.append(position)
                    set_columns.append(column)
        touched = np.fromiter(
            (column for column, _ in replacements),
            dtype=np.intp,
            count=len(replacements),
        )
        # Clear the touched columns word-wise (one combined mask per 64-bit
        # word), then set the new incidence bits; the boolean matrix of the
        # patched index materialises lazily from these words when needed.
        words, word_of = np.unique(touched >> 6, return_inverse=True)
        clear = np.zeros(words.size, dtype=np.uint64)
        np.bitwise_or.at(
            clear,
            word_of,
            np.left_shift(np.uint64(1), (touched & 63).astype(np.uint64)),
        )
        rows[:, words] &= ~clear
        if set_positions:
            position_array = np.asarray(set_positions, dtype=np.intp)
            column_array = np.asarray(set_columns, dtype=np.intp)
            np.bitwise_or.at(
                rows,
                (position_array, column_array >> 6),
                np.left_shift(
                    np.uint64(1), (column_array & 63).astype(np.uint64)
                ),
            )
        return PackedIndex._from_matrix(
            entries, self._os_names, None, rows=rows, columns=columns
        )


class ReplicaIncidence:
    """Per-exploit victim bitmasks over the replica positions of one group.

    Where :class:`IncidenceIndex` maps OS *names* to entry bitmasks, this
    maps pool *entries* to replica-position bitmasks: bit ``i`` of
    ``victim_mask(e)`` is set when replica position ``i`` runs an OS affected
    by pool entry ``e``.  Duplicate OS names (homogeneous groups) set one bit
    per position, so a popcount is exactly the naive per-replica victim scan.

    The Monte-Carlo simulation compiles this once per configuration and then
    answers "how many replicas does this exploit newly compromise?" with one
    AND-NOT + popcount per event, instead of re-walking the replica list.
    """

    __slots__ = ("_victim_masks", "_replica_os")

    def __init__(
        self,
        entries: Sequence[VulnerabilityEntry],
        replica_os_names: Sequence[str],
    ) -> None:
        self._replica_os: Tuple[str, ...] = tuple(replica_os_names)
        position_masks: Dict[str, int] = {}
        for position, name in enumerate(replica_os_names):
            position_masks[name] = position_masks.get(name, 0) | (1 << position)
        masks: List[int] = []
        get_mask = position_masks.get
        for entry in entries:
            mask = 0
            for name in entry.affected_os:
                positions = get_mask(name)
                if positions:
                    mask |= positions
            masks.append(mask)
        self._victim_masks: Tuple[int, ...] = tuple(masks)

    def __getstate__(self) -> Tuple[Tuple[int, ...], Tuple[str, ...]]:
        """Explicit pickle support (see :meth:`IncidenceIndex.__getstate__`)."""
        return (self._victim_masks, self._replica_os)

    def __setstate__(self, state: Tuple[Tuple[int, ...], Tuple[str, ...]]) -> None:
        self._victim_masks, self._replica_os = state

    @property
    def group_size(self) -> int:
        return len(self._replica_os)

    @property
    def replica_os_names(self) -> Tuple[str, ...]:
        return self._replica_os

    @property
    def victim_masks(self) -> Tuple[int, ...]:
        """One replica-position bitmask per pool entry, in pool order."""
        return self._victim_masks

    def victim_mask(self, entry_index: int) -> int:
        return self._victim_masks[entry_index]

    def victim_mask_for(self, affected_os: Sequence[str]) -> int:
        """Victim bitmask for an ad-hoc exploit (e.g. the smart opening shot)."""
        affected = set(affected_os)
        mask = 0
        for position, name in enumerate(self._replica_os):
            if name in affected:
                mask |= 1 << position
        return mask
