"""Bitset incidence-matrix engine for shared-vulnerability analytics.

The naive analyses re-intersect Python sets per entry and per OS combination,
which is fine for the paper's 11 OSes but collapses combinatorially on larger
catalogues (a 100-OS catalogue has ~3.9 million 4-OS combinations).  This
module compiles a dataset once into two dual bitset views:

* an **OS mask** per operating system: an arbitrary-precision integer whose
  bit ``e`` is set when entry ``e`` affects that OS (a column of the
  OS x vulnerability incidence matrix);
* an **entry mask** per vulnerability: an integer whose bit ``o`` is set when
  the entry affects OS number ``o`` (the matching row).

With those in hand the core primitives become single machine-level
operations on big integers:

* ``shared_count(oses)``  -> ``popcount(AND over the OS masks)``;
* ``affecting_at_least(k)`` -> ``popcount(entry mask) >= k``;
* the Table III pair matrix -> one AND + popcount per pair;
* ``per_combination_totals(k)`` -> a depth-first fold-AND over the catalogue
  whose partial ANDs are shared between all combinations with a common
  prefix, with an early exit once a partial intersection is empty.

CPython's ``int`` stores 30 bits per digit and ``int.bit_count`` runs in C,
so each AND/popcount over a few-thousand-entry corpus touches only a few
hundred machine words -- near memory bandwidth, no per-entry Python
bytecode.

:class:`repro.analysis.dataset.VulnerabilityDataset` builds an
:class:`IncidenceIndex` lazily and routes its shared-vulnerability
primitives through it by default (``engine="bitset"``); the pre-engine
implementations remain available via ``engine="naive"`` for cross-checking
(see ``tests/analysis/test_engine_equivalence.py`` and the CLI's
``--engine`` flag).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

from repro.core.models import VulnerabilityEntry

Pair = Tuple[str, str]


class IncidenceIndex:
    """Precompiled OS x vulnerability incidence matrix over integer bitsets.

    The index is immutable and references (does not copy) the entry sequence
    it was built from; bit ``e`` in every OS mask refers to ``entries[e]`` in
    construction order, so decoded entry lists preserve dataset order.
    OS names outside ``os_names`` are ignored at build time and resolve to an
    empty mask at query time, mirroring the naive per-OS index.
    """

    __slots__ = ("_entries", "_os_names", "_os_index", "_os_masks", "_entry_masks")

    def __init__(
        self, entries: Sequence[VulnerabilityEntry], os_names: Sequence[str]
    ) -> None:
        self._entries: Tuple[VulnerabilityEntry, ...] = tuple(entries)
        self._os_names: Tuple[str, ...] = tuple(os_names)
        self._os_index: Dict[str, int] = {
            name: position for position, name in enumerate(self._os_names)
        }
        os_masks = [0] * len(self._os_names)
        entry_masks = [0] * len(self._entries)
        for entry_bit, entry in enumerate(self._entries):
            bit = 1 << entry_bit
            row = 0
            for name in entry.affected_os:
                position = self._os_index.get(name)
                if position is not None:
                    os_masks[position] |= bit
                    row |= 1 << position
            entry_masks[entry_bit] = row
        self._os_masks: Tuple[int, ...] = tuple(os_masks)
        self._entry_masks: Tuple[int, ...] = tuple(entry_masks)

    # -- pickling ---------------------------------------------------------------

    def __getstate__(self) -> Tuple[object, ...]:
        """Explicit pickle support for the ``__slots__`` layout.

        The parallel experiment runner (:mod:`repro.runner`) ships compiled
        state between worker processes, so the compiled index must pickle
        identically on every supported interpreter rather than relying on the
        version-dependent default reduction for slotted classes.
        """
        return (
            self._entries,
            self._os_names,
            self._os_index,
            self._os_masks,
            self._entry_masks,
        )

    def __setstate__(self, state: Tuple[object, ...]) -> None:
        (
            self._entries,
            self._os_names,
            self._os_index,
            self._os_masks,
            self._entry_masks,
        ) = state

    # -- basic accessors --------------------------------------------------------

    @property
    def os_names(self) -> Tuple[str, ...]:
        return self._os_names

    @property
    def entries(self) -> Tuple[VulnerabilityEntry, ...]:
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def os_mask(self, os_name: str) -> int:
        """Bitmask of entries affecting the OS (0 for an uncatalogued name)."""
        position = self._os_index.get(os_name)
        if position is None:
            return 0
        return self._os_masks[position]

    def entry_mask(self, entry_index: int) -> int:
        """Bitmask of catalogued OSes affected by entry ``entry_index``."""
        return self._entry_masks[entry_index]

    def count_for(self, os_name: str) -> int:
        """Number of entries affecting the OS."""
        return self.os_mask(os_name).bit_count()

    def decode(self, mask: int) -> List[VulnerabilityEntry]:
        """Entries selected by an entry bitmask, in dataset order."""
        entries = self._entries
        selected: List[VulnerabilityEntry] = []
        while mask:
            low_bit = mask & -mask
            selected.append(entries[low_bit.bit_length() - 1])
            mask ^= low_bit
        return selected

    # -- shared-vulnerability primitives ---------------------------------------

    def intersection_mask(self, os_names: Sequence[str]) -> int:
        """Fold-AND of the OS masks (0 for an empty name list)."""
        names = iter(os_names)
        try:
            mask = self.os_mask(next(names))
        except StopIteration:
            return 0
        for name in names:
            if not mask:
                return 0
            mask &= self.os_mask(name)
        return mask

    def shared_count(self, os_names: Sequence[str]) -> int:
        """Number of entries affecting *all* the given OSes."""
        return self.intersection_mask(os_names).bit_count()

    def shared_entries(self, os_names: Sequence[str]) -> List[VulnerabilityEntry]:
        """Entries affecting all the given OSes, in dataset order."""
        return self.decode(self.intersection_mask(os_names))

    def breadth(self, entry_index: int) -> int:
        """How many catalogued OSes entry ``entry_index`` affects."""
        return self._entry_masks[entry_index].bit_count()

    def affecting_at_least(self, k: int) -> List[VulnerabilityEntry]:
        """Entries affecting at least ``k`` catalogued OSes, in dataset order."""
        entries = self._entries
        return [
            entries[index]
            for index, row in enumerate(self._entry_masks)
            if row.bit_count() >= k
        ]

    def breadth_histogram(self) -> Dict[int, int]:
        """Histogram of per-entry breadth over the catalogued OSes (breadth >= 1)."""
        histogram: Dict[int, int] = {}
        for row in self._entry_masks:
            breadth = row.bit_count()
            if breadth:
                histogram[breadth] = histogram.get(breadth, 0) + 1
        return dict(sorted(histogram.items()))

    # -- pair and k-set analytics ----------------------------------------------

    def pair_matrix(self, os_names: Sequence[str]) -> Dict[Pair, int]:
        """Shared counts for every unordered pair, in combination order."""
        masks = [(name, self.os_mask(name)) for name in os_names]
        return {
            (name_a, name_b): (mask_a & mask_b).bit_count()
            for (name_a, mask_a), (name_b, mask_b) in itertools.combinations(masks, 2)
        }

    def k_set_totals(self, os_names: Sequence[str], k: int) -> Dict[Tuple[str, ...], int]:
        """Shared counts for every ``k``-combination of ``os_names``.

        Combinations are emitted in ``itertools.combinations(os_names, k)``
        order, zero counts included.  Partial intersections are computed once
        per combination *prefix* and reused for every completion, and once a
        partial AND is empty the remaining combinations under it are filled
        with zero without touching the masks again.
        """
        names = tuple(os_names)
        if not 0 < k <= len(names):
            raise ValueError(f"k must be between 1 and {len(names)}")
        masks = [self.os_mask(name) for name in names]
        totals: Dict[Tuple[str, ...], int] = {}

        def expand(start: int, prefix: Tuple[str, ...], acc: int) -> None:
            depth_left = k - len(prefix)
            if depth_left == 0:
                totals[prefix] = acc.bit_count()
                return
            if depth_left == 1 and acc:
                for index in range(start, len(names)):
                    totals[prefix + (names[index],)] = (acc & masks[index]).bit_count()
                return
            if not acc:
                # The prefix intersection is already empty: every completion
                # shares zero vulnerabilities, no further ANDs needed.  The
                # map/fromkeys pair keeps the (possibly huge) zero fill in C.
                totals.update(
                    dict.fromkeys(
                        map(
                            prefix.__add__,
                            itertools.combinations(names[start:], depth_left),
                        ),
                        0,
                    )
                )
                return
            for index in range(start, len(names) - depth_left + 1):
                expand(index + 1, prefix + (names[index],), acc & masks[index])

        expand(0, (), (1 << len(self._entries)) - 1)
        return totals

    # -- replica-group primitives -----------------------------------------------

    def compromising_entries(
        self, os_names: Sequence[str], threshold: int = 2
    ) -> List[VulnerabilityEntry]:
        """Entries affecting at least ``threshold`` members of a replica group.

        Duplicate names in ``os_names`` count with their multiplicity, like
        the naive per-entry membership sum.
        """
        weights: Dict[int, int] = {}
        union = 0
        for name in os_names:
            position = self._os_index.get(name)
            if position is None:
                continue
            weights[position] = weights.get(position, 0) + 1
            union |= self._os_masks[position]
        if not weights:
            return []
        group = list(weights.items())
        entry_masks = self._entry_masks
        selected = 0
        while union:
            low_bit = union & -union
            union ^= low_bit
            row = entry_masks[low_bit.bit_length() - 1]
            hits = sum(weight for position, weight in group if row >> position & 1)
            if hits >= threshold:
                selected |= low_bit
        return self.decode(selected)


class ReplicaIncidence:
    """Per-exploit victim bitmasks over the replica positions of one group.

    Where :class:`IncidenceIndex` maps OS *names* to entry bitmasks, this
    maps pool *entries* to replica-position bitmasks: bit ``i`` of
    ``victim_mask(e)`` is set when replica position ``i`` runs an OS affected
    by pool entry ``e``.  Duplicate OS names (homogeneous groups) set one bit
    per position, so a popcount is exactly the naive per-replica victim scan.

    The Monte-Carlo simulation compiles this once per configuration and then
    answers "how many replicas does this exploit newly compromise?" with one
    AND-NOT + popcount per event, instead of re-walking the replica list.
    """

    __slots__ = ("_victim_masks", "_replica_os")

    def __init__(
        self,
        entries: Sequence[VulnerabilityEntry],
        replica_os_names: Sequence[str],
    ) -> None:
        self._replica_os: Tuple[str, ...] = tuple(replica_os_names)
        position_masks: Dict[str, int] = {}
        for position, name in enumerate(replica_os_names):
            position_masks[name] = position_masks.get(name, 0) | (1 << position)
        masks: List[int] = []
        get_mask = position_masks.get
        for entry in entries:
            mask = 0
            for name in entry.affected_os:
                positions = get_mask(name)
                if positions:
                    mask |= positions
            masks.append(mask)
        self._victim_masks: Tuple[int, ...] = tuple(masks)

    def __getstate__(self) -> Tuple[Tuple[int, ...], Tuple[str, ...]]:
        """Explicit pickle support (see :meth:`IncidenceIndex.__getstate__`)."""
        return (self._victim_masks, self._replica_os)

    def __setstate__(self, state: Tuple[Tuple[int, ...], Tuple[str, ...]]) -> None:
        self._victim_masks, self._replica_os = state

    @property
    def group_size(self) -> int:
        return len(self._replica_os)

    @property
    def replica_os_names(self) -> Tuple[str, ...]:
        return self._replica_os

    @property
    def victim_masks(self) -> Tuple[int, ...]:
        """One replica-position bitmask per pool entry, in pool order."""
        return self._victim_masks

    def victim_mask(self, entry_index: int) -> int:
        return self._victim_masks[entry_index]

    def victim_mask_for(self, affected_os: Sequence[str]) -> int:
        """Victim bitmask for an ad-hoc exploit (e.g. the smart opening shot)."""
        affected = set(affected_os)
        mask = 0
        for position, name in enumerate(self._replica_os):
            if name in affected:
                mask |= 1 << position
        return mask
