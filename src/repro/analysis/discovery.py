"""Vulnerability discovery models fitted to the cumulative report counts.

The paper's related-work section (Section II) contrasts two views of how
vulnerability reports accumulate over a product's lifetime: Alhazmi and
Malaiya fit an S-shaped (logistic) curve, while Schryen argues the growth is
essentially linear.  This module fits both models to the per-OS cumulative
vulnerability counts of the corpus, so the question can be asked of the data
the study actually uses, and so the temporal calibration of the synthetic
corpus can be sanity-checked quantitatively.

Two models:

* **linear** -- ``V(t) = a + b t``;
* **logistic (Alhazmi-Malaiya)** -- ``V(t) = B / (1 + C exp(-A B t))`` where
  ``B`` is the (estimated) total number of vulnerabilities that will ever be
  found.

Both are fitted with least squares (scipy), and compared with the coefficient
of determination R².
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.temporal import TemporalAnalysis


@dataclass(frozen=True)
class ModelFit:
    """One fitted discovery model for one OS."""

    os_name: str
    model: str                      # "linear" or "logistic"
    parameters: Tuple[float, ...]
    r_squared: float
    #: Predicted cumulative counts, aligned with the fitted years.
    predictions: Tuple[float, ...]

    def predict(self, t: float) -> float:
        """Model value at (fractional) years since the first observation."""
        if self.model == "linear":
            a, b = self.parameters
            return a + b * t
        a, b, c = self.parameters
        return b / (1.0 + c * np.exp(-a * b * t))


def _r_squared(observed: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(np.sum((observed - predicted) ** 2))
    total = float(np.sum((observed - observed.mean()) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


class DiscoveryModelAnalysis:
    """Fits vulnerability-discovery models to per-OS cumulative counts."""

    def __init__(
        self,
        dataset: VulnerabilityDataset,
        first_year: int = 1994,
        last_year: int = 2010,
    ) -> None:
        self._temporal = TemporalAnalysis(dataset.valid(), first_year, last_year)

    # -- data -----------------------------------------------------------------

    def cumulative_series(self, os_name: str) -> Tuple[List[int], List[int]]:
        """(years, cumulative counts) for one OS, starting at its first report."""
        series = self._temporal.series_for(os_name)
        years = sorted(series)
        counts = np.cumsum([series[year] for year in years])
        # Trim leading years with zero reports so models are not forced
        # through a long flat prefix (recent OSes like Windows 2008).
        first_nonzero = next((i for i, value in enumerate(counts) if value > 0), 0)
        return years[first_nonzero:], [int(v) for v in counts[first_nonzero:]]

    # -- fitting -----------------------------------------------------------------

    def fit_linear(self, os_name: str) -> ModelFit:
        """Least-squares linear fit of the cumulative count."""
        years, cumulative = self.cumulative_series(os_name)
        if len(years) < 2:
            raise ValueError(f"not enough data to fit a model for {os_name}")
        t = np.array(years, dtype=float) - years[0]
        observed = np.array(cumulative, dtype=float)
        b, a = np.polyfit(t, observed, 1)
        predicted = a + b * t
        return ModelFit(
            os_name=os_name,
            model="linear",
            parameters=(float(a), float(b)),
            r_squared=_r_squared(observed, predicted),
            predictions=tuple(float(v) for v in predicted),
        )

    def fit_logistic(self, os_name: str) -> ModelFit:
        """Least-squares Alhazmi-Malaiya logistic fit of the cumulative count."""
        years, cumulative = self.cumulative_series(os_name)
        if len(years) < 4:
            raise ValueError(f"not enough data to fit a logistic model for {os_name}")
        t = np.array(years, dtype=float) - years[0]
        observed = np.array(cumulative, dtype=float)
        total_guess = max(observed[-1] * 1.5, 1.0)

        def model(time, a, b, c):
            return b / (1.0 + c * np.exp(-a * b * time))

        try:
            parameters, _ = optimize.curve_fit(
                model,
                t,
                observed,
                p0=(0.01, total_guess, 10.0),
                maxfev=20_000,
                bounds=((1e-6, observed[-1] * 0.5, 1e-3), (10.0, observed[-1] * 20.0, 1e6)),
            )
        except (RuntimeError, ValueError):
            # Fall back to the initial guess when the optimiser does not
            # converge (can happen for very short series).
            parameters = np.array((0.01, total_guess, 10.0))
        predicted = model(t, *parameters)
        return ModelFit(
            os_name=os_name,
            model="logistic",
            parameters=tuple(float(p) for p in parameters),
            r_squared=_r_squared(observed, predicted),
            predictions=tuple(float(v) for v in predicted),
        )

    def compare_models(self, os_name: str) -> Dict[str, ModelFit]:
        """Fit both models for one OS and return them keyed by model name."""
        return {"linear": self.fit_linear(os_name), "logistic": self.fit_logistic(os_name)}

    def best_model_per_os(
        self, os_names: Optional[Sequence[str]] = None
    ) -> Dict[str, str]:
        """Which model fits each OS better (by R²)."""
        os_names = os_names or self._temporal._dataset.os_names  # noqa: SLF001
        winners: Dict[str, str] = {}
        for name in os_names:
            try:
                fits = self.compare_models(name)
            except ValueError:
                continue
            winners[name] = max(fits.values(), key=lambda fit: fit.r_squared).model
        return winners

    def saturation_estimates(
        self, os_names: Optional[Sequence[str]] = None
    ) -> Dict[str, float]:
        """Logistic-model estimate of the total vulnerabilities per OS (parameter B)."""
        os_names = os_names or self._temporal._dataset.os_names  # noqa: SLF001
        estimates: Dict[str, float] = {}
        for name in os_names:
            try:
                fit = self.fit_logistic(name)
            except ValueError:
                continue
            estimates[name] = fit.parameters[1]
        return estimates
