"""Release-level diversity analysis (Table VI, Section IV-D).

When vulnerability reports carry per-release information (as the security
trackers of NetBSD, Debian, Ubuntu and RedHat allow), the unit of diversity
can be the (OS, release) pair instead of the whole distribution.  This module
counts shared vulnerabilities between such pairs, both across releases of the
same OS and across releases of different OSes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.dataset import VulnerabilityDataset
from repro.core.constants import OS_CATALOG
from repro.core.enums import ServerConfiguration

ReleaseKey = Tuple[str, str]  # (os name, release version)


@dataclass(frozen=True)
class ReleasePairResult:
    """Shared vulnerabilities between two (OS, release) pairs."""

    release_a: ReleaseKey
    release_b: ReleaseKey
    shared: int
    same_os: bool


class ReleaseDiversityAnalysis:
    """Shared-vulnerability counts between (OS, release) pairs."""

    def __init__(
        self,
        dataset: VulnerabilityDataset,
        configuration: ServerConfiguration = ServerConfiguration.ISOLATED_THIN,
    ) -> None:
        self._dataset = dataset.valid().filtered(configuration)

    # -- single release -----------------------------------------------------------

    def count_for_release(self, os_name: str, version: str) -> int:
        """Vulnerabilities affecting one specific (OS, release)."""
        return sum(
            1
            for entry in self._dataset.for_os(os_name)
            if entry.affects_release(os_name, version)
        )

    def shared_between_releases(
        self, release_a: ReleaseKey, release_b: ReleaseKey
    ) -> int:
        """Vulnerabilities affecting both (OS, release) pairs.

        When both releases belong to the same OS this counts vulnerabilities
        spanning the two releases; across OSes it counts cross-distribution
        common vulnerabilities that hit those specific releases.
        """
        os_a, version_a = release_a
        os_b, version_b = release_b
        if release_a == release_b:
            raise ValueError("the two releases must differ")
        count = 0
        for entry in self._dataset.for_os(os_a):
            if not entry.affects_release(os_a, version_a):
                continue
            if entry.affects_release(os_b, version_b):
                count += 1
        return count

    # -- Table VI -------------------------------------------------------------------

    def release_pair_table(
        self, releases: Mapping[str, Sequence[str]]
    ) -> List[ReleasePairResult]:
        """Shared counts for every pair of the given (OS, release) combinations.

        ``releases`` maps OS names to the release versions of interest, e.g.
        ``{"Debian": ["2.1", "3.0", "4.0"], "RedHat": ["6.2*", "4.0", "5.0"]}``
        for Table VI.
        """
        keys: List[ReleaseKey] = [
            (os_name, version)
            for os_name, versions in releases.items()
            for version in versions
        ]
        for os_name, version in keys:
            if os_name not in OS_CATALOG:
                raise KeyError(f"unknown operating system {os_name!r}")
        results: List[ReleasePairResult] = []
        for release_a, release_b in itertools.combinations(keys, 2):
            results.append(
                ReleasePairResult(
                    release_a=release_a,
                    release_b=release_b,
                    shared=self.shared_between_releases(release_a, release_b),
                    same_os=release_a[0] == release_b[0],
                )
            )
        return results

    def table6(
        self,
        debian_releases: Sequence[str] = ("2.1", "3.0", "4.0"),
        redhat_releases: Sequence[str] = ("6.2*", "4.0", "5.0"),
    ) -> List[ReleasePairResult]:
        """The exact Table VI of the paper (Debian vs RedHat releases)."""
        return self.release_pair_table(
            {"Debian": debian_releases, "RedHat": redhat_releases}
        )

    # -- derived -----------------------------------------------------------------------

    def disjoint_release_pairs(
        self, releases: Mapping[str, Sequence[str]]
    ) -> List[Tuple[ReleaseKey, ReleaseKey]]:
        """Release pairs with zero shared vulnerabilities (diversity candidates)."""
        return [
            (result.release_a, result.release_b)
            for result in self.release_pair_table(releases)
            if result.shared == 0
        ]

    def effective_diversity_gain(
        self, os_a: str, os_b: str, releases: Mapping[str, Sequence[str]]
    ) -> Tuple[int, int]:
        """(distribution-level shared, minimum release-level shared) for two OSes.

        Quantifies the paper's conclusion that aggregating across releases is
        pessimistic: the release-level minimum is usually far below the
        distribution-level count.
        """
        distribution_level = self._dataset.shared_count((os_a, os_b))
        cross = [
            result.shared
            for result in self.release_pair_table(
                {os_a: releases.get(os_a, ()), os_b: releases.get(os_b, ())}
            )
            if not result.same_os
        ]
        release_level = min(cross) if cross else 0
        return distribution_level, release_level
