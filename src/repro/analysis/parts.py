"""Component-class distributions (Table II) and per-part shared counts (Table IV)."""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.dataset import VulnerabilityDataset
from repro.core.constants import OS_NAMES
from repro.core.enums import ComponentClass, ServerConfiguration

Pair = Tuple[str, str]

CLASS_ORDER: Tuple[ComponentClass, ...] = (
    ComponentClass.DRIVER,
    ComponentClass.KERNEL,
    ComponentClass.SYSTEM_SOFTWARE,
    ComponentClass.APPLICATION,
)


def class_distribution(
    dataset: VulnerabilityDataset,
    os_names: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[ComponentClass, int]]:
    """Per-OS counts per component class over valid entries (Table II)."""
    dataset = dataset.valid()
    os_names = tuple(os_names or dataset.os_names or OS_NAMES)
    table: Dict[str, Dict[ComponentClass, int]] = {
        name: {cls: 0 for cls in CLASS_ORDER} for name in os_names
    }
    for entry in dataset:
        if entry.component_class is None:
            continue
        for name in entry.affected_os:
            if name in table:
                table[name][entry.component_class] += 1
    return table


def class_percentages(dataset: VulnerabilityDataset) -> Dict[ComponentClass, float]:
    """Share of each class over the distinct valid entries (Table II, last row)."""
    dataset = dataset.valid()
    counts = {cls: 0 for cls in CLASS_ORDER}
    total = 0
    for entry in dataset:
        if entry.component_class is None:
            continue
        counts[entry.component_class] += 1
        total += 1
    if total == 0:
        return {cls: 0.0 for cls in CLASS_ORDER}
    return {cls: 100.0 * counts[cls] / total for cls in CLASS_ORDER}


def shared_by_part(
    dataset: VulnerabilityDataset,
    configuration: ServerConfiguration = ServerConfiguration.ISOLATED_THIN,
    os_names: Optional[Sequence[str]] = None,
    include_empty: bool = False,
) -> Dict[Pair, Dict[ComponentClass, int]]:
    """Shared vulnerabilities per OS pair, broken down by component class (Table IV).

    By default only pairs with at least one shared vulnerability under the
    configuration are returned, in decreasing order of total shared count --
    the presentation used by the paper.
    """
    dataset = dataset.valid().filtered(configuration)
    os_names = tuple(os_names or dataset.os_names or OS_NAMES)
    results: Dict[Pair, Dict[ComponentClass, int]] = {}
    for os_a, os_b in itertools.combinations(os_names, 2):
        breakdown = {cls: 0 for cls in CLASS_ORDER if cls is not ComponentClass.APPLICATION}
        shared = dataset.shared_between((os_a, os_b))
        for entry in shared:
            if entry.component_class in breakdown:
                breakdown[entry.component_class] += 1
        if shared or include_empty:
            results[(os_a, os_b)] = breakdown
    ordered = sorted(
        results.items(), key=lambda item: (-sum(item[1].values()), item[0])
    )
    return dict(ordered)


def family_class_totals(
    dataset: VulnerabilityDataset,
) -> Dict[str, Dict[ComponentClass, int]]:
    """Per-family aggregation of the Table II counts.

    Used to reproduce the observation that Kernel vulnerabilities dominate in
    the BSD and Solaris families while Application vulnerabilities dominate in
    the Linux and Windows families.
    """
    from repro.core.constants import FAMILY_MEMBERS

    per_os = class_distribution(dataset)
    totals: Dict[str, Dict[ComponentClass, int]] = {}
    for family, members in FAMILY_MEMBERS.items():
        family_counts = {cls: 0 for cls in CLASS_ORDER}
        for name in members:
            for cls in CLASS_ORDER:
                family_counts[cls] += per_os.get(name, {}).get(cls, 0)
        totals[family.value] = family_counts
    return totals
