"""In-memory analytic view over a collection of vulnerability entries.

The dataset is the single entry point for all analyses: it indexes entries by
OS, by year and by server-configuration filter, and exposes the Table I
validity summary.  It never consults the calibration targets -- every number
is computed from the entries it is given.

The shared-vulnerability primitives (``shared_count``, ``shared_between``,
``affecting_at_least``, ``compromising``) are thin façades over one of three
interchangeable engines:

* ``"bitset"`` (default) -- the precompiled incidence-matrix index of
  :mod:`repro.analysis.engine`, which answers intersection queries with
  big-integer AND + popcount and scales to catalogues of hundreds of OSes;
* ``"packed"`` -- the numpy packed-word index
  (:class:`repro.analysis.engine.PackedIndex`): the same incidence matrix
  as ``uint64`` word arrays with vectorised AND + popcount, the fastest
  path for wide pair/k-set workloads and the only engine supporting
  incremental index maintenance (``apply_diff``);
* ``"naive"`` -- the original per-entry set re-intersection, kept as the
  reference implementation for cross-checking (``--engine naive`` on the
  CLI, and the equivalence test suite).

All engines return identical values in identical order; derived datasets
(``valid()``, ``filtered()``, ``between()``) inherit the engine choice.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.engine import IncidenceIndex, PackedIndex
from repro.classify.filters import ServerConfigurationFilter, ValidityFilter
from repro.core.constants import OS_NAMES
from repro.core.enums import ServerConfiguration, ValidityStatus
from repro.core.models import VulnerabilityEntry

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.snapshots.store import SnapshotRecord

#: Engines understood by :class:`VulnerabilityDataset`.
ENGINES: Tuple[str, ...] = ("bitset", "naive", "packed")


@dataclass(frozen=True)
class ValiditySummary:
    """Per-OS and distinct counts of valid and excluded entries (Table I)."""

    per_os: Mapping[str, Mapping[ValidityStatus, int]]
    distinct: Mapping[ValidityStatus, int]

    def valid_count(self, os_name: str) -> int:
        return self.per_os.get(os_name, {}).get(ValidityStatus.VALID, 0)


class VulnerabilityDataset:
    """A queryable collection of vulnerability entries."""

    def __init__(
        self,
        entries: Iterable[VulnerabilityEntry],
        os_names: Sequence[str] = OS_NAMES,
        engine: str = "bitset",
        snapshot: Optional["SnapshotRecord"] = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self._entries: List[VulnerabilityEntry] = list(entries)
        self._os_names: Tuple[str, ...] = tuple(os_names)
        self._engine = engine
        self._snapshot = snapshot
        self._digest: Optional[str] = None
        self._incidence: Optional[IncidenceIndex] = None
        self._packed: Optional[PackedIndex] = None
        self._by_os: Dict[str, List[VulnerabilityEntry]] = {name: [] for name in self._os_names}
        for entry in self._entries:
            for name in entry.affected_os:
                if name in self._by_os:
                    self._by_os[name].append(entry)

    # -- basic accessors -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def entries(self) -> Sequence[VulnerabilityEntry]:
        return tuple(self._entries)

    @property
    def os_names(self) -> Tuple[str, ...]:
        return self._os_names

    @property
    def engine(self) -> str:
        """The shared-vulnerability engine this dataset routes through."""
        return self._engine

    @property
    def snapshot(self) -> Optional["SnapshotRecord"]:
        """The ledger record this dataset is pinned to, if it came from one.

        Set by :meth:`repro.snapshots.store.SnapshotStore.dataset_at`;
        ``None`` for datasets built directly from entries.  Derived datasets
        (``valid()``, ``filtered()``, ``between()``) are *not* pinned -- they
        no longer hold the snapshot's exact entry set.
        """
        return self._snapshot

    def digest(self) -> str:
        """Content address of this dataset's entry set (computed lazily).

        Equals the owning snapshot's ledger digest when the dataset is an
        unmodified snapshot materialisation, because both are
        :func:`repro.snapshots.digests.dataset_digest` over the same
        normalized entries -- the property that makes exported results
        traceable to an exact dataset state.
        """
        if self._digest is None:
            from repro.snapshots.digests import dataset_digest_of

            self._digest = dataset_digest_of(self._entries)
        return self._digest

    @property
    def incidence(self) -> IncidenceIndex:
        """The bitset incidence index over this dataset (built lazily).

        Available regardless of the configured engine, so callers can always
        reach the fast path (or cross-check it) explicitly.
        """
        if self._incidence is None:
            self._incidence = IncidenceIndex(self._entries, self._os_names)
        return self._incidence

    @property
    def packed(self) -> PackedIndex:
        """The numpy packed-word index over this dataset (built lazily).

        Like :attr:`incidence`, available regardless of the configured
        engine -- incremental maintenance (:meth:`PackedIndex.apply_diff`)
        and the vectorised pair/k-set paths are always reachable.
        """
        if self._packed is None:
            self._packed = PackedIndex(self._entries, self._os_names)
        return self._packed

    def query_index(self):
        """The compiled index the configured engine queries through.

        :class:`~repro.analysis.engine.PackedIndex` for ``engine="packed"``,
        the bitset :class:`~repro.analysis.engine.IncidenceIndex` otherwise
        (including ``"naive"``, whose façades bypass it but whose callers
        may still want the explicit fast path).  Both expose the same query
        API, so engine-aware callers dispatch through this single method.
        """
        if self._engine == "packed":
            return self.packed
        return self.incidence

    @classmethod
    def from_packed_index(
        cls,
        index: PackedIndex,
        snapshot: Optional["SnapshotRecord"] = None,
    ) -> "VulnerabilityDataset":
        """A ``engine="packed"`` dataset adopting an already-built index.

        The incremental serving path (:meth:`repro.service.registry
        .ArtifactRegistry.patch`) derives a new :class:`PackedIndex` from a
        snapshot diff and wraps it here, so "compiling" the patched dataset
        costs nothing.
        """
        dataset = cls(
            index.entries, index.os_names, engine="packed", snapshot=snapshot
        )
        dataset._packed = index
        return dataset

    def compile(self) -> "VulnerabilityDataset":
        """Build the configured engine's index eagerly and return ``self``.

        The index is otherwise built lazily on first query; long-lived
        callers (the serving layer's artifact registry) call this once at
        registration time so the one-off compile cost never lands inside a
        latency-sensitive request.
        """
        _ = self.query_index()
        return self

    def with_engine(self, engine: str) -> "VulnerabilityDataset":
        """The same dataset routed through a different engine."""
        if engine == self._engine:
            return self
        return VulnerabilityDataset(
            self._entries, self._os_names, engine=engine, snapshot=self._snapshot
        )

    def for_os(self, os_name: str) -> List[VulnerabilityEntry]:
        """All entries affecting the given OS."""
        if os_name not in self._by_os:
            raise KeyError(f"unknown operating system {os_name!r}")
        return list(self._by_os[os_name])

    def valid(self) -> "VulnerabilityDataset":
        """A dataset restricted to valid entries."""
        return VulnerabilityDataset(
            (entry for entry in self._entries if entry.is_valid),
            self._os_names,
            engine=self._engine,
        )

    # -- validity (Table I) -----------------------------------------------------

    def validity_summary(self) -> ValiditySummary:
        """Per-OS and distinct counts per validity status."""
        per_os: Dict[str, Dict[ValidityStatus, int]] = {
            name: {status: 0 for status in ValidityStatus} for name in self._os_names
        }
        distinct: Dict[ValidityStatus, int] = {status: 0 for status in ValidityStatus}
        for entry in self._entries:
            distinct[entry.validity] += 1
            for name in entry.affected_os:
                if name in per_os:
                    per_os[name][entry.validity] += 1
        return ValiditySummary(per_os=per_os, distinct=distinct)

    def annotate_validity(self, validity_filter: Optional[ValidityFilter] = None) -> "VulnerabilityDataset":
        """Re-derive validity statuses from the description text."""
        validity_filter = validity_filter or ValidityFilter()
        return VulnerabilityDataset(
            validity_filter.annotate(self._entries), self._os_names, engine=self._engine
        )

    # -- filtering ----------------------------------------------------------------

    def filtered(
        self, configuration: ServerConfiguration | ServerConfigurationFilter
    ) -> "VulnerabilityDataset":
        """Dataset restricted to a server configuration (Fat/Thin/Isolated Thin)."""
        if isinstance(configuration, ServerConfiguration):
            configuration = ServerConfigurationFilter(configuration)
        return VulnerabilityDataset(
            (entry for entry in self._entries if configuration.admits(entry)),
            self._os_names,
            engine=self._engine,
        )

    def between(self, start: _dt.date, end: _dt.date) -> "VulnerabilityDataset":
        """Dataset restricted to entries published in [start, end]."""
        if start > end:
            raise ValueError("start date must not be after end date")
        return VulnerabilityDataset(
            (entry for entry in self._entries if start <= entry.published <= end),
            self._os_names,
            engine=self._engine,
        )

    def years(self) -> List[int]:
        """Sorted list of publication years present in the dataset."""
        return sorted({entry.year for entry in self._entries})

    # -- shared-vulnerability primitives --------------------------------------------

    def count_for(self, os_name: str) -> int:
        """Number of entries affecting the OS."""
        return len(self._by_os.get(os_name, ()))

    def shared_between(self, os_names: Sequence[str]) -> List[VulnerabilityEntry]:
        """Entries affecting *all* the given OSes (common vulnerabilities)."""
        names = list(os_names)
        if not names:
            return []
        if self._engine != "naive":
            return self.query_index().shared_entries(names)
        smallest = min(names, key=lambda n: len(self._by_os.get(n, ())))
        return [
            entry
            for entry in self._by_os.get(smallest, ())
            if entry.affects_all(names)
        ]

    def shared_count(self, os_names: Sequence[str]) -> int:
        if self._engine != "naive":
            return self.query_index().shared_count(os_names)
        return len(self.shared_between(os_names))

    def affecting_at_least(self, k: int) -> List[VulnerabilityEntry]:
        """Entries affecting at least ``k`` of the catalogued OSes."""
        if k < 1:
            raise ValueError("k must be at least 1")
        if self._engine != "naive":
            return self.query_index().affecting_at_least(k)
        catalog: Set[str] = set(self._os_names)
        return [
            entry
            for entry in self._entries
            if len(entry.affected_os & catalog) >= k
        ]

    def compromising(self, os_names: Sequence[str], threshold: int = 2) -> List[VulnerabilityEntry]:
        """Entries affecting at least ``threshold`` members of a replica group.

        With the default threshold of two this is the notion used by the
        Figure 3 evaluation: a vulnerability "breaks the diversity" of a
        replica group as soon as it is common to two of its members.  For a
        single-OS group every vulnerability of that OS counts.
        """
        names = list(os_names)
        if not names:
            return []
        if len(names) == 1:
            return list(self._by_os.get(names[0], ()))
        # The naive path matches group members against ``entry.affected_os``
        # directly, so names outside the catalogue still count, and a
        # threshold below one admits every entry; the index only scans the
        # group's own entries over catalogued names, hence the guards.
        if (
            self._engine != "naive"
            and threshold >= 1
            and all(name in self._by_os for name in names)
        ):
            return self.query_index().compromising_entries(names, threshold)
        return [
            entry
            for entry in self._entries
            if sum(1 for name in names if entry.affects(name)) >= threshold
        ]
