"""Sensitivity / ablation analyses for the study's design choices.

The paper takes several methodological decisions whose impact is worth
quantifying (and which DESIGN.md calls out for ablation):

* excluding the Unknown / Unspecified / Disputed entries (Section III-A);
* filtering Application and locally-exploitable vulnerabilities (the Thin and
  Isolated Thin Server profiles, Section IV-B);
* aggregating all releases of a distribution (Section IV-D argues this is
  pessimistic);
* the particular 2/3-vs-1/3 history/observed split year (Section IV-C).

Each function recomputes a headline statistic under a perturbed choice so the
robustness of the conclusions can be reported alongside the main results.

Two computational checks ride along: :meth:`SensitivityAnalysis.engine_ablation`
re-runs a headline statistic on both shared-vulnerability engines (bitset vs
naive -- the delta must be zero), and
:meth:`SensitivityAnalysis.catalogue_scale_sensitivity` re-asks the diversity
question on synthetic catalogues far larger than the paper's 11 OSes.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.dataset import VulnerabilityDataset
from repro.analysis.pairs import PairAnalysis
from repro.analysis.periods import PeriodAnalysis
from repro.analysis.selection import ReplicaSetSelector
from repro.core.constants import STUDY_PERIOD, TABLE5_OSES
from repro.core.enums import ServerConfiguration


@dataclass(frozen=True)
class AblationResult:
    """One ablation: the statistic under the paper's choice vs the variant."""

    name: str
    baseline: float
    variant: float

    @property
    def delta(self) -> float:
        return self.variant - self.baseline


class SensitivityAnalysis:
    """Quantifies how robust the headline results are to methodology changes."""

    def __init__(self, dataset: VulnerabilityDataset) -> None:
        #: Full dataset including excluded entries (needed for the validity ablation).
        self._full = dataset
        self._valid = dataset.valid()

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def _pairs_with_at_most_one(dataset: VulnerabilityDataset,
                                configuration: ServerConfiguration) -> float:
        analysis = PairAnalysis(dataset)
        pairs = analysis.pairs()
        low = analysis.pairs_with_at_most(1, configuration)
        return 100.0 * len(low) / len(pairs) if pairs else 0.0

    # -- ablations ----------------------------------------------------------------

    def validity_filter_ablation(self) -> AblationResult:
        """Keep the Unknown/Unspecified/Disputed entries instead of dropping them.

        The excluded entries carry no component class, so the comparison is
        made on the Fat Server profile (all vulnerabilities): percentage of OS
        pairs sharing at most one vulnerability.
        """
        baseline = self._pairs_with_at_most_one(self._valid, ServerConfiguration.FAT)
        # Treat every entry as valid for the variant.
        relaxed = VulnerabilityDataset(
            [entry.with_validity(entry.validity.__class__.VALID) for entry in self._full],
            self._full.os_names,
        )
        variant = self._pairs_with_at_most_one(relaxed, ServerConfiguration.FAT)
        return AblationResult("keep Unknown/Unspecified/Disputed entries", baseline, variant)

    def configuration_ablation(self) -> List[AblationResult]:
        """How much each server profile contributes to the diversity argument."""
        results: List[AblationResult] = []
        baseline = self._pairs_with_at_most_one(
            self._valid, ServerConfiguration.ISOLATED_THIN
        )
        for configuration in (ServerConfiguration.FAT, ServerConfiguration.THIN):
            variant = self._pairs_with_at_most_one(self._valid, configuration)
            results.append(
                AblationResult(
                    f"evaluate pairs on the {configuration.value} profile",
                    baseline,
                    variant,
                )
            )
        return results

    def split_year_sensitivity(
        self, split_years: Sequence[int] = (2003, 2004, 2005, 2006, 2007)
    ) -> Dict[int, Tuple[str, ...]]:
        """Does the recommended replica set change with the history cut-off year?

        Returns, for each candidate split year, the best four-OS group chosen
        from data up to (and including) that year.
        """
        recommendations: Dict[int, Tuple[str, ...]] = {}
        for split_year in split_years:
            history_end = _dt.date(split_year, 12, 31)
            observed_start = _dt.date(split_year + 1, 1, 1)
            if observed_start > STUDY_PERIOD[1]:
                continue
            periods = PeriodAnalysis(
                self._valid,
                history_period=(STUDY_PERIOD[0], history_end),
                observed_period=(observed_start, STUDY_PERIOD[1]),
            )
            selector = ReplicaSetSelector(
                pair_matrix=periods.history_pair_matrix(), candidates=TABLE5_OSES
            )
            recommendations[split_year] = selector.exhaustive(4, top=1)[0].os_names
        return recommendations

    def seed_sensitivity(
        self, seeds: Sequence[int] = (1, 7, 42), statistic: str = "reduction"
    ) -> Dict[int, float]:
        """Stability of a headline statistic across corpus-generation seeds.

        Rebuilds the corpus for each seed and recomputes either the Fat→
        Isolated-Thin reduction (``"reduction"``) or the percentage of pairs
        sharing at most one vulnerability (``"low_pairs"``).
        """
        from repro.synthetic.corpus import build_corpus

        values: Dict[int, float] = {}
        for seed in seeds:
            dataset = VulnerabilityDataset(build_corpus(seed=seed).entries).valid()
            analysis = PairAnalysis(dataset)
            if statistic == "reduction":
                values[seed] = analysis.reduction_between(
                    ServerConfiguration.FAT, ServerConfiguration.ISOLATED_THIN
                )
            elif statistic == "low_pairs":
                values[seed] = self._pairs_with_at_most_one(
                    dataset, ServerConfiguration.ISOLATED_THIN
                )
            else:
                raise ValueError(f"unknown statistic {statistic!r}")
        return values

    def engine_ablation(self) -> AblationResult:
        """Recompute a headline statistic on both engines; the delta must be 0.

        The bitset incidence engine (:mod:`repro.analysis.engine`) is
        guaranteed to return exactly the naive per-entry counts; this
        ablation makes that guarantee observable next to the methodological
        ones.  A non-zero delta indicates an engine bug, never a
        methodological effect.
        """
        baseline = self._pairs_with_at_most_one(
            self._valid.with_engine("bitset"), ServerConfiguration.ISOLATED_THIN
        )
        variant = self._pairs_with_at_most_one(
            self._valid.with_engine("naive"), ServerConfiguration.ISOLATED_THIN
        )
        return AblationResult("naive engine instead of bitset", baseline, variant)

    def catalogue_scale_sensitivity(
        self,
        scales: Sequence[Tuple[int, int]] = ((2, 5), (5, 10), (10, 10)),
        seed: int = 20110627,
    ) -> Dict[Tuple[int, int], Tuple[float, int]]:
        """Does the diversity argument survive much larger OS catalogues?

        For each ``(n_families, releases_per_family)`` scale a synthetic
        catalogue is generated and two numbers are recomputed on its
        Isolated Thin Server view: the percentage of OS pairs sharing at
        most one vulnerability, and the pairwise-shared score of a greedily
        selected four-OS replica group.  Keyed by the (n_families,
        releases_per_family) scale, so scales with equal catalogue sizes do
        not collide.
        """
        from repro.synthetic.generator import generate_scaled_catalogue

        results: Dict[Tuple[int, int], Tuple[float, int]] = {}
        for n_families, releases_per_family in scales:
            catalogue = generate_scaled_catalogue(
                n_families, releases_per_family, seed=seed
            )
            dataset = catalogue.dataset()
            low_pairs = self._pairs_with_at_most_one(
                dataset, ServerConfiguration.ISOLATED_THIN
            )
            selector = ReplicaSetSelector(
                dataset=dataset, candidates=catalogue.os_names
            )
            best = selector.greedy(min(4, len(catalogue.os_names)))
            results[(n_families, releases_per_family)] = (
                low_pairs,
                best.pairwise_shared,
            )
        return results

    def leave_one_os_out(self) -> Dict[str, Tuple[str, ...]]:
        """Best four-OS group when each OS in turn is unavailable.

        Answers the operational question "what if we cannot deploy X?", and
        shows that the diversity argument does not hinge on one particular OS.
        """
        periods = PeriodAnalysis(self._valid)
        matrix = periods.history_pair_matrix()
        recommendations: Dict[str, Tuple[str, ...]] = {}
        for excluded in TABLE5_OSES:
            candidates = tuple(name for name in TABLE5_OSES if name != excluded)
            selector = ReplicaSetSelector(
                pair_matrix={
                    pair: count
                    for pair, count in matrix.items()
                    if excluded not in pair
                },
                candidates=candidates,
            )
            recommendations[excluded] = selector.exhaustive(4, top=1)[0].os_names
        return recommendations
