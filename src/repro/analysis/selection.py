"""Replica-set selection for intrusion-tolerant systems (Section IV-C).

Given shared-vulnerability counts between operating systems, choose a group
of ``n`` OSes for the replicas of a BFT system so that the number of common
vulnerabilities is minimised.  Three strategies are provided:

* **exhaustive** -- exact search over every combination, with
  branch-and-bound pruning on partial group scores (shared counts are
  non-negative, so a partial group's score is a lower bound for every
  completion); exact even on catalogues of hundreds of OSes when the best
  groups are sparse;
* **greedy** -- grows the set one OS at a time, always adding the candidate
  that adds the fewest shared vulnerabilities (scales to larger catalogues);
* **spectral/graph** -- treats the shared counts as edge weights of a graph
  and picks a minimum-weight k-subgraph seeded by the lightest edge, using
  :mod:`networkx` (useful as an independent cross-check of the other two).

All three strategies run on the same pair matrix, which is compiled in one
pass from the dataset's bitset incidence index (:mod:`repro.analysis.engine`)
rather than by re-intersecting entry sets per pair.

The module also provides the BFT sizing helpers (3f+1, 2f+1) used by the
paper when it discusses how many distinct OSes are needed to tolerate ``f``
intrusions.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.analysis.dataset import VulnerabilityDataset
from repro.core.constants import OS_NAMES
from repro.core.enums import ServerConfiguration
from repro.core.exceptions import SelectionError

Pair = Tuple[str, str]


def replicas_needed(f: int, quorum_model: str = "3f+1") -> int:
    """Number of replicas required to tolerate ``f`` faults.

    ``quorum_model`` is ``"3f+1"`` for standard BFT state-machine replication
    (PBFT-style) or ``"2f+1"`` for hybrid/trusted-component protocols.
    """
    if f < 0:
        raise SelectionError("f must be non-negative")
    if quorum_model == "3f+1":
        return 3 * f + 1
    if quorum_model == "2f+1":
        return 2 * f + 1
    raise SelectionError(f"unknown quorum model {quorum_model!r}")


def max_tolerated_faults(n_os: int, quorum_model: str = "3f+1") -> int:
    """Largest ``f`` a pool of ``n_os`` distinct OSes can support."""
    if n_os < 1:
        return 0
    if quorum_model == "3f+1":
        return max(0, (n_os - 1) // 3)
    if quorum_model == "2f+1":
        return max(0, (n_os - 1) // 2)
    raise SelectionError(f"unknown quorum model {quorum_model!r}")


@dataclass(frozen=True)
class SelectionResult:
    """A selected replica group and its score."""

    os_names: Tuple[str, ...]
    #: Sum of pairwise shared vulnerabilities inside the group.
    pairwise_shared: int
    #: Number of distinct vulnerabilities affecting at least two members.
    compromising: int
    strategy: str

    def __len__(self) -> int:
        return len(self.os_names)


class ReplicaSetSelector:
    """Selects diverse OS groups from shared-vulnerability data."""

    def __init__(
        self,
        dataset: Optional[VulnerabilityDataset] = None,
        pair_matrix: Optional[Mapping[Pair, int]] = None,
        candidates: Optional[Sequence[str]] = None,
        configuration: ServerConfiguration = ServerConfiguration.ISOLATED_THIN,
    ) -> None:
        if dataset is None and pair_matrix is None:
            raise SelectionError("either a dataset or a pair matrix is required")
        # ``is not None``: an empty dataset is falsy but still a dataset.
        self._dataset = (
            dataset.valid().filtered(configuration) if dataset is not None else None
        )
        if candidates is not None:
            self._candidates: Tuple[str, ...] = tuple(candidates)
        elif pair_matrix is not None:
            names = sorted({name for pair in pair_matrix for name in pair})
            self._candidates = tuple(names)
        else:
            self._candidates = tuple(dataset.os_names or OS_NAMES)
        self._matrix: Dict[Pair, int] = {}
        if pair_matrix is not None:
            for (os_a, os_b), count in pair_matrix.items():
                self._matrix[self._key(os_a, os_b)] = count
        elif self._dataset.engine != "naive":
            # One pass over the engine's index: an AND + popcount per pair.
            for (os_a, os_b), count in self._dataset.query_index().pair_matrix(
                self._candidates
            ).items():
                self._matrix[self._key(os_a, os_b)] = count
        else:
            for os_a, os_b in itertools.combinations(self._candidates, 2):
                self._matrix[self._key(os_a, os_b)] = self._dataset.shared_count(
                    (os_a, os_b)
                )

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _key(os_a: str, os_b: str) -> Pair:
        return tuple(sorted((os_a, os_b)))  # type: ignore[return-value]

    @property
    def candidates(self) -> Tuple[str, ...]:
        return self._candidates

    def shared(self, os_a: str, os_b: str) -> int:
        """Shared-vulnerability count between two candidate OSes."""
        return self._matrix.get(self._key(os_a, os_b), 0)

    def group_score(self, os_names: Sequence[str]) -> int:
        """Sum of pairwise shared vulnerabilities inside a group."""
        return sum(
            self.shared(os_a, os_b)
            for os_a, os_b in itertools.combinations(os_names, 2)
        )

    def group_compromising(self, os_names: Sequence[str]) -> int:
        """Distinct vulnerabilities affecting >= 2 group members (needs a dataset)."""
        if self._dataset is None:
            return self.group_score(os_names)
        return len(self._dataset.compromising(os_names))

    def _result(self, os_names: Sequence[str], strategy: str) -> SelectionResult:
        ordered = tuple(sorted(os_names))
        return SelectionResult(
            os_names=ordered,
            pairwise_shared=self.group_score(ordered),
            compromising=self.group_compromising(ordered),
            strategy=strategy,
        )

    def _check_size(self, n: int) -> None:
        if n < 1:
            raise SelectionError("group size must be at least 1")
        if n > len(self._candidates):
            raise SelectionError(
                f"cannot select {n} distinct OSes from {len(self._candidates)} candidates"
            )

    # -- strategies ---------------------------------------------------------------

    def exhaustive(self, n: int, top: int = 1) -> List[SelectionResult]:
        """Exact search for the ``top`` best ``n``-combinations.

        Shared counts never go negative, so a partial group's score is a
        lower bound on the score of every completion; the search prunes any
        branch whose partial score already exceeds the current ``top``-th
        best (branch-and-bound).  A user-supplied pair matrix with negative
        weights invalidates that bound, in which case every combination is
        enumerated instead.  Either way the result -- scores, members and
        tie-breaking order -- is identical to full enumeration.
        """
        self._check_size(n)
        if top <= 0:
            return []
        if any(weight < 0 for weight in self._matrix.values()):
            return self.rank_all(n)[:top]
        scored = [
            self._result(combo, "exhaustive")
            for combo in self._bounded_search(n, top)
        ]
        scored.sort(key=lambda result: (result.pairwise_shared, result.os_names))
        return scored[:top]

    def _bounded_search(self, n: int, top: int) -> List[Tuple[str, ...]]:
        """The ``top`` best ``n``-combinations, identical to full enumeration.

        Depth-first over the candidates in *sorted* order, so combinations
        complete in exactly the (score-then-names) tie-breaking order's
        name component: among equal scores, earlier completions are
        lexicographically smaller.  A max-heap keyed by (score, completion
        sequence) therefore holds the true ``top`` best at all times, and a
        branch can be pruned as soon as its partial score reaches the heap
        maximum: every completion scores at least the partial (weights are
        non-negative) and, on a score tie, loses by name order to what the
        heap already holds.
        """
        candidates = tuple(sorted(self._candidates))
        shared = self.shared
        # Max-heap via negation; `sequence` stands in for the name tie-break.
        heap: List[Tuple[int, int, Tuple[str, ...]]] = []
        sequence = itertools.count()

        def visit(start: int, chosen: List[str], score: int) -> None:
            if len(chosen) == n:
                item = (-score, -next(sequence), tuple(chosen))
                if len(heap) < top:
                    heapq.heappush(heap, item)
                elif item > heap[0]:
                    # Better than the current worst: (-score, -seq) ordering
                    # makes this exactly the (score, names) comparison, as a
                    # later sequence number means lexicographically greater.
                    heapq.heapreplace(heap, item)
                return
            slots_left = n - len(chosen)
            full = len(heap) == top
            for index in range(start, len(candidates) - slots_left + 1):
                name = candidates[index]
                extended = score + sum(shared(name, other) for other in chosen)
                if full and extended >= -heap[0][0]:
                    continue
                chosen.append(name)
                visit(index + 1, chosen, extended)
                chosen.pop()
                full = len(heap) == top

        visit(0, [], 0)
        return [combo for _neg_score, _neg_seq, combo in heap]

    def greedy(self, n: int, seed_os: Optional[str] = None) -> SelectionResult:
        """Grow a group greedily, adding the cheapest OS at each step."""
        self._check_size(n)
        if seed_os is None:
            # Start from the lightest edge, or the single OS when n == 1.
            if n == 1:
                best = min(self._candidates)
                return self._result((best,), "greedy")
            (os_a, os_b), _ = min(
                self._matrix.items(), key=lambda item: (item[1], item[0])
            )
            chosen = [os_a, os_b]
        else:
            if seed_os not in self._candidates:
                raise SelectionError(f"{seed_os!r} is not a candidate OS")
            chosen = [seed_os]
        while len(chosen) < n:
            remaining = [name for name in self._candidates if name not in chosen]
            best_name = min(
                remaining,
                key=lambda name: (sum(self.shared(name, other) for other in chosen), name),
            )
            chosen.append(best_name)
        return self._result(chosen[:n], "greedy")

    def graph_based(self, n: int) -> SelectionResult:
        """Minimum-weight group selection on the shared-vulnerability graph.

        Builds the complete weighted graph of candidates, seeds the group with
        the endpoints of the globally lightest edge, then repeatedly adds the
        node with the lightest total attachment to the current group --
        essentially a Prim-style heuristic -- and finally local-search swaps
        single members while that improves the score.
        """
        self._check_size(n)
        graph = nx.Graph()
        graph.add_nodes_from(self._candidates)
        for (os_a, os_b), weight in self._matrix.items():
            graph.add_edge(os_a, os_b, weight=weight)
        if n == 1:
            return self._result((min(self._candidates),), "graph")
        seed_edge = min(
            graph.edges(data="weight", default=0),
            key=lambda edge: (edge[2], edge[0], edge[1]),
        )
        chosen = [seed_edge[0], seed_edge[1]]
        while len(chosen) < n:
            remaining = [name for name in self._candidates if name not in chosen]
            best_name = min(
                remaining,
                key=lambda name: (
                    sum(graph[name][other]["weight"] if graph.has_edge(name, other) else 0
                        for other in chosen),
                    name,
                ),
            )
            chosen.append(best_name)
        # Local search: try swapping each member for each outsider.
        improved = True
        while improved:
            improved = False
            current_score = self.group_score(chosen)
            for inside, outside in itertools.product(
                list(chosen), [c for c in self._candidates if c not in chosen]
            ):
                candidate = [outside if name == inside else name for name in chosen]
                if self.group_score(candidate) < current_score:
                    chosen = candidate
                    improved = True
                    break
        return self._result(chosen[:n], "graph")

    # -- paper scenarios ---------------------------------------------------------------

    def best_for_faults(
        self, f: int, quorum_model: str = "3f+1", strategy: str = "exhaustive"
    ) -> SelectionResult:
        """Best group sized for tolerating ``f`` faults under a quorum model."""
        n = replicas_needed(f, quorum_model)
        if strategy == "exhaustive":
            return self.exhaustive(n, top=1)[0]
        if strategy == "greedy":
            return self.greedy(n)
        if strategy == "graph":
            return self.graph_based(n)
        raise SelectionError(f"unknown selection strategy {strategy!r}")

    def rank_all(self, n: int) -> List[SelectionResult]:
        """All ``n``-combinations ranked from most to least diverse."""
        self._check_size(n)
        scored = [
            self._result(combo, "exhaustive")
            for combo in itertools.combinations(self._candidates, n)
        ]
        scored.sort(key=lambda result: (result.pairwise_shared, result.os_names))
        return scored
