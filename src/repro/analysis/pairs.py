"""Pairwise shared-vulnerability analysis (Table III).

For every unordered pair of operating systems, count the vulnerabilities
reported for each OS and the vulnerabilities reported for both, under the
three server configurations of the paper (Fat, Thin and Isolated Thin
Server).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.dataset import VulnerabilityDataset
from repro.core.constants import OS_NAMES
from repro.core.enums import ServerConfiguration

Pair = Tuple[str, str]


@dataclass(frozen=True)
class PairResult:
    """Shared-vulnerability counts for one OS pair under one configuration."""

    os_a: str
    os_b: str
    configuration: ServerConfiguration
    count_a: int
    count_b: int
    shared: int

    @property
    def pair(self) -> Pair:
        return (self.os_a, self.os_b)

    @property
    def shared_fraction(self) -> float:
        """Shared count relative to the smaller of the two OS counts."""
        smaller = min(self.count_a, self.count_b)
        if smaller == 0:
            return 0.0
        return self.shared / smaller


class PairAnalysis:
    """Computes Table III for a dataset."""

    def __init__(
        self,
        dataset: VulnerabilityDataset,
        os_names: Optional[Sequence[str]] = None,
    ) -> None:
        self._dataset = dataset.valid()
        self._os_names: Tuple[str, ...] = tuple(os_names or dataset.os_names or OS_NAMES)

    @property
    def os_names(self) -> Tuple[str, ...]:
        return self._os_names

    def pairs(self) -> List[Pair]:
        """All unordered OS pairs, in the row order of Table III."""
        return list(itertools.combinations(self._os_names, 2))

    # -- single pair -------------------------------------------------------------

    def analyze_pair(
        self, os_a: str, os_b: str, configuration: ServerConfiguration
    ) -> PairResult:
        """Counts for one pair under one server configuration."""
        filtered = self._dataset.filtered(configuration)
        return PairResult(
            os_a=os_a,
            os_b=os_b,
            configuration=configuration,
            count_a=filtered.count_for(os_a),
            count_b=filtered.count_for(os_b),
            shared=filtered.shared_count((os_a, os_b)),
        )

    # -- full table -----------------------------------------------------------------

    def table(
        self, configurations: Optional[Sequence[ServerConfiguration]] = None
    ) -> Dict[Pair, Dict[ServerConfiguration, PairResult]]:
        """The full Table III: every pair under every configuration."""
        configurations = tuple(configurations or tuple(ServerConfiguration))
        results: Dict[Pair, Dict[ServerConfiguration, PairResult]] = {}
        filtered_views = {
            configuration: self._dataset.filtered(configuration)
            for configuration in configurations
        }
        counts = {
            configuration: {name: view.count_for(name) for name in self._os_names}
            for configuration, view in filtered_views.items()
        }
        for os_a, os_b in self.pairs():
            per_configuration: Dict[ServerConfiguration, PairResult] = {}
            for configuration, view in filtered_views.items():
                per_configuration[configuration] = PairResult(
                    os_a=os_a,
                    os_b=os_b,
                    configuration=configuration,
                    count_a=counts[configuration][os_a],
                    count_b=counts[configuration][os_b],
                    shared=view.shared_count((os_a, os_b)),
                )
            results[(os_a, os_b)] = per_configuration
        return results

    def shared_matrix(
        self, configuration: ServerConfiguration
    ) -> Dict[Pair, int]:
        """Shared counts only, keyed by pair, for one configuration."""
        view = self._dataset.filtered(configuration)
        if view.engine != "naive":
            # One AND + popcount per pair over the precompiled OS rows.
            return view.query_index().pair_matrix(self._os_names)
        return {
            (os_a, os_b): view.shared_count((os_a, os_b))
            for os_a, os_b in self.pairs()
        }

    # -- derived statistics ------------------------------------------------------------

    def pairs_with_at_most(
        self, threshold: int, configuration: ServerConfiguration
    ) -> List[Pair]:
        """Pairs sharing at most ``threshold`` vulnerabilities under a configuration."""
        matrix = self.shared_matrix(configuration)
        return [pair for pair, shared in matrix.items() if shared <= threshold]

    def reduction_between(
        self,
        from_configuration: ServerConfiguration,
        to_configuration: ServerConfiguration,
    ) -> float:
        """Average per-pair reduction (%) of shared vulnerabilities between two configurations.

        Pairs with zero shared vulnerabilities in the source configuration are
        skipped (a reduction is undefined for them), matching the paper's
        "56% on average" computation from Fat to Isolated Thin Server.
        """
        source = self.shared_matrix(from_configuration)
        target = self.shared_matrix(to_configuration)
        reductions: List[float] = []
        for pair, shared in source.items():
            if shared == 0:
                continue
            reductions.append(100.0 * (shared - target[pair]) / shared)
        if not reductions:
            return 0.0
        return sum(reductions) / len(reductions)
