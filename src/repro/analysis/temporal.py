"""Temporal distribution of vulnerability publications (Figure 2).

Produces per-OS yearly series, grouped by family panel exactly as in the
figure, plus the correlation analysis the paper uses to argue that peaks and
valleys coincide within the Windows and Linux families.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.dataset import VulnerabilityDataset
from repro.core.constants import FAMILY_MEMBERS, OS_NAMES, STUDY_PERIOD
from repro.core.enums import OSFamily


class TemporalAnalysis:
    """Yearly vulnerability-count series per OS and per family."""

    def __init__(
        self,
        dataset: VulnerabilityDataset,
        first_year: Optional[int] = None,
        last_year: Optional[int] = None,
    ) -> None:
        self._dataset = dataset.valid()
        years = self._dataset.years()
        self._first_year = first_year if first_year is not None else (
            min(years) if years else STUDY_PERIOD[0].year
        )
        self._last_year = last_year if last_year is not None else (
            max(years) if years else STUDY_PERIOD[1].year
        )
        if self._first_year > self._last_year:
            raise ValueError("first_year must not be after last_year")

    # -- series -------------------------------------------------------------

    @property
    def years(self) -> List[int]:
        return list(range(self._first_year, self._last_year + 1))

    def series_for(self, os_name: str) -> Dict[int, int]:
        """Vulnerabilities published per year for one OS."""
        series = {year: 0 for year in self.years}
        for entry in self._dataset.for_os(os_name):
            if self._first_year <= entry.year <= self._last_year:
                series[entry.year] += 1
        return series

    def all_series(self, os_names: Sequence[str] = OS_NAMES) -> Dict[str, Dict[int, int]]:
        return {name: self.series_for(name) for name in os_names}

    def family_panels(self) -> Dict[OSFamily, Dict[str, Dict[int, int]]]:
        """The four panels of Figure 2: per-family, per-OS yearly series."""
        return {
            family: {name: self.series_for(name) for name in members}
            for family, members in FAMILY_MEMBERS.items()
        }

    def family_totals(self) -> Dict[OSFamily, Dict[int, int]]:
        """Total vulnerabilities per family per year."""
        totals: Dict[OSFamily, Dict[int, int]] = {}
        for family, panel in self.family_panels().items():
            family_series = {year: 0 for year in self.years}
            for series in panel.values():
                for year, count in series.items():
                    family_series[year] += count
            totals[family] = family_series
        return totals

    # -- derived observations -----------------------------------------------------

    def intra_family_correlation(self, family: OSFamily) -> float:
        """Mean pairwise Pearson correlation of yearly series within a family.

        The paper observes a strong correlation of peaks and valleys within
        the Windows and Linux families; this statistic quantifies it.  Only
        years where both OSes already existed are compared, and pairs without
        variance return 0.0.
        """
        members = FAMILY_MEMBERS[family]
        series = {name: self.series_for(name) for name in members}
        correlations: List[float] = []
        for i, name_a in enumerate(members):
            for name_b in members[i + 1:]:
                a = np.array([series[name_a][year] for year in self.years], dtype=float)
                b = np.array([series[name_b][year] for year in self.years], dtype=float)
                mask = ~((a == 0) & (b == 0))
                if mask.sum() < 3:
                    continue
                a, b = a[mask], b[mask]
                if a.std() == 0 or b.std() == 0:
                    correlations.append(0.0)
                    continue
                correlations.append(float(np.corrcoef(a, b)[0, 1]))
        if not correlations:
            return 0.0
        return float(np.mean(correlations))

    def recent_vs_past(
        self, os_name: str, split_year: int = 2006
    ) -> Tuple[float, float]:
        """Average yearly count before and from ``split_year`` (recent-decline check)."""
        series = self.series_for(os_name)
        past = [count for year, count in series.items() if year < split_year]
        recent = [count for year, count in series.items() if year >= split_year]
        past_avg = float(np.mean(past)) if past else 0.0
        recent_avg = float(np.mean(recent)) if recent else 0.0
        return past_avg, recent_avg

    def entries_before_release(self, os_name: str) -> List[str]:
        """CVE ids published before the OS's first release year.

        Reproduces the paper's observation that Windows 2000 appears in seven
        entries published before 1999 (vulnerabilities inherited from Windows
        NT code).
        """
        from repro.core.constants import get_os

        first_year = get_os(os_name).first_release_year
        return [
            entry.cve_id
            for entry in self._dataset.for_os(os_name)
            if entry.year < first_year
        ]
