"""Vulnerabilities shared by groups of three or more operating systems.

Section IV-B of the paper extends the pairwise study to larger OS groups and
reports how many vulnerabilities are still common as the group size grows,
naming the three CVEs with the widest reach.  This module provides both
interpretations of that count:

* :meth:`KSetAnalysis.affecting_at_least` -- vulnerabilities affecting at
  least ``k`` of the studied OSes (the most natural reading);
* :meth:`KSetAnalysis.per_combination_totals` -- the number of common
  vulnerabilities summed/maximised over every ``k``-OS combination, which is
  useful when sizing replica groups.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.dataset import VulnerabilityDataset
from repro.core.constants import OS_NAMES
from repro.core.enums import ServerConfiguration
from repro.core.models import VulnerabilityEntry


@dataclass(frozen=True)
class WideVulnerability:
    """A vulnerability together with the number of studied OSes it affects."""

    cve_id: str
    breadth: int
    affected_os: FrozenSet[str]


class KSetAnalysis:
    """Higher-order (k >= 3) shared-vulnerability analysis."""

    def __init__(
        self,
        dataset: VulnerabilityDataset,
        configuration: ServerConfiguration = ServerConfiguration.FAT,
        os_names: Optional[Sequence[str]] = None,
        prefiltered: bool = False,
    ) -> None:
        """``prefiltered=True`` takes ``dataset`` as already valid-only and
        configuration-filtered, so callers holding such a view (the serving
        layer's artifact registry) reuse its compiled index instead of
        building a second copy of the same sub-corpus."""
        self._os_names: Tuple[str, ...] = tuple(os_names or dataset.os_names or OS_NAMES)
        self._dataset = (
            dataset if prefiltered else dataset.valid().filtered(configuration)
        )

    # -- breadth of individual vulnerabilities --------------------------------------

    def breadth_histogram(self) -> Dict[int, int]:
        """Histogram of how many studied OSes each vulnerability affects."""
        histogram: Dict[int, int] = {}
        catalog = set(self._os_names)
        for entry in self._dataset:
            breadth = len(entry.affected_os & catalog)
            if breadth:
                histogram[breadth] = histogram.get(breadth, 0) + 1
        return dict(sorted(histogram.items()))

    def affecting_at_least(self, k: int) -> List[WideVulnerability]:
        """Vulnerabilities affecting at least ``k`` of the studied OSes.

        "Studied" means this analysis's ``os_names``: when they are narrower
        than the dataset's catalogue, breadth is still counted over the
        studied set only.
        """
        catalog = set(self._os_names)
        wide = []
        for entry in self._dataset.affecting_at_least(k):
            affected = frozenset(entry.affected_os & catalog)
            if len(affected) < k:
                continue
            wide.append(
                WideVulnerability(
                    cve_id=entry.cve_id, breadth=len(affected), affected_os=affected
                )
            )
        return sorted(wide, key=lambda w: (-w.breadth, w.cve_id))

    def widest(self, top: int = 3) -> List[WideVulnerability]:
        """The ``top`` vulnerabilities with the widest OS coverage.

        Only vulnerabilities affecting at least **two** of the studied OSes
        qualify (the list is seeded from :meth:`affecting_at_least` with
        ``k=2``), so single-OS entries never appear, even when ``top``
        exceeds the number of multi-OS vulnerabilities.  Ties are broken
        deterministically: decreasing breadth first, then ascending CVE
        identifier.
        """
        return self.affecting_at_least(2)[:top]

    def summary(self, ks: Sequence[int] = (3, 4, 5, 6)) -> Dict[int, int]:
        """Counts of vulnerabilities affecting at least ``k`` OSes, per ``k``."""
        return {k: len(self.affecting_at_least(k)) for k in ks}

    # -- per-combination view ----------------------------------------------------------

    def per_combination_totals(self, k: int) -> Dict[Tuple[str, ...], int]:
        """Common vulnerabilities for every ``k``-OS combination.

        The count for a combination is the number of vulnerabilities that
        affect *all* of its members.  Combinations with zero common
        vulnerabilities are included (they are exactly the candidates for a
        diverse replica group).
        """
        if not 2 <= k <= len(self._os_names):
            raise ValueError(f"k must be between 2 and {len(self._os_names)}")
        if self._dataset.engine != "naive":
            # Depth-first fold-AND with shared prefix intersections.
            return self._dataset.query_index().k_set_totals(self._os_names, k)
        totals: Dict[Tuple[str, ...], int] = {}
        for combo in itertools.combinations(self._os_names, k):
            totals[combo] = self._dataset.shared_count(combo)
        return totals

    def best_combinations(self, k: int, top: int = 5) -> List[Tuple[Tuple[str, ...], int]]:
        """The ``top`` k-OS combinations with the fewest common vulnerabilities."""
        totals = self.per_combination_totals(k)
        return sorted(totals.items(), key=lambda item: (item[1], item[0]))[:top]

    def worst_combinations(self, k: int, top: int = 5) -> List[Tuple[Tuple[str, ...], int]]:
        """The ``top`` k-OS combinations with the most common vulnerabilities."""
        totals = self.per_combination_totals(k)
        return sorted(totals.items(), key=lambda item: (-item[1], item[0]))[:top]

    def combinations_fully_covered(self, k: int) -> int:
        """Number of ``k``-OS combinations with at least one common vulnerability."""
        return sum(1 for count in self.per_combination_totals(k).values() if count > 0)
