"""Component-class classifier for vulnerability entries.

Applies the keyword rules of :mod:`repro.classify.rules` to the description
text of each entry, with two extra mechanisms mirroring the paper's manual
process:

* **overrides** -- an explicit CVE-id -> class mapping that always wins (used
  when the description is ambiguous, or to encode decisions taken by hand);
* **fallback** -- a class used when no rule matches (the paper assigned every
  valid entry to exactly one class, so a neutral default is needed; callers
  can instead ask for strict behaviour and handle unclassified entries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.enums import ComponentClass
from repro.core.exceptions import ClassificationError
from repro.core.models import VulnerabilityEntry
from repro.classify.rules import DEFAULT_RULES, ClassificationRule


@dataclass
class ClassificationReport:
    """Diagnostics from a classification run."""

    classified: int = 0
    by_rule: Dict[str, int] = field(default_factory=dict)
    overridden: int = 0
    fallback_used: int = 0

    def record(self, rule_name: str) -> None:
        self.classified += 1
        self.by_rule[rule_name] = self.by_rule.get(rule_name, 0) + 1


class ComponentClassifier:
    """Rule-based classifier with manual overrides.

    Parameters
    ----------
    rules:
        Classification rules, applied in ascending ``priority`` order.
    overrides:
        Mapping from CVE identifier to the class decided by hand.
    fallback:
        Class assigned when no rule matches.  When ``None`` the classifier is
        strict and :meth:`classify` raises
        :class:`~repro.core.exceptions.ClassificationError` for unmatched
        descriptions.
    """

    def __init__(
        self,
        rules: Sequence[ClassificationRule] = DEFAULT_RULES,
        overrides: Optional[Mapping[str, ComponentClass]] = None,
        fallback: Optional[ComponentClass] = ComponentClass.APPLICATION,
    ) -> None:
        self._rules: Tuple[ClassificationRule, ...] = tuple(
            sorted(rules, key=lambda r: r.priority)
        )
        self._overrides: Dict[str, ComponentClass] = dict(overrides or {})
        self._fallback = fallback
        self.report = ClassificationReport()

    # -- overrides ----------------------------------------------------------

    def add_override(self, cve_id: str, component_class: ComponentClass) -> None:
        """Record a manual classification decision for one entry."""
        self._overrides[cve_id] = component_class

    def overrides(self) -> Mapping[str, ComponentClass]:
        return dict(self._overrides)

    # -- classification -----------------------------------------------------

    def classify_text(self, text: str) -> Optional[ComponentClass]:
        """Class suggested by the rules for a description, or ``None``."""
        for rule in self._rules:
            if rule.matches(text):
                self.report.record(rule.name)
                return rule.component_class
        return None

    def classify(self, entry: VulnerabilityEntry) -> ComponentClass:
        """Classify a single entry (overrides, then rules, then fallback)."""
        override = self._overrides.get(entry.cve_id)
        if override is not None:
            self.report.overridden += 1
            return override
        by_rule = self.classify_text(entry.summary)
        if by_rule is not None:
            return by_rule
        if self._fallback is None:
            raise ClassificationError(
                f"no rule matches the description of {entry.cve_id}"
            )
        self.report.fallback_used += 1
        return self._fallback

    def classify_all(
        self, entries: Iterable[VulnerabilityEntry], keep_existing: bool = False
    ) -> List[VulnerabilityEntry]:
        """Classify a batch of entries, returning updated copies.

        With ``keep_existing=True`` entries that already carry a component
        class are left untouched (useful when ingesting a corpus that was
        partially classified by hand).
        """
        out: List[VulnerabilityEntry] = []
        for entry in entries:
            if keep_existing and entry.component_class is not None:
                out.append(entry)
                continue
            out.append(entry.with_class(self.classify(entry)))
        return out

    def class_distribution(
        self, entries: Iterable[VulnerabilityEntry]
    ) -> Dict[ComponentClass, int]:
        """Histogram of classes over already-classified entries."""
        histogram: Dict[ComponentClass, int] = {cls: 0 for cls in ComponentClass}
        for entry in entries:
            if entry.component_class is not None:
                histogram[entry.component_class] += 1
        return histogram
