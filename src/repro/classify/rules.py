"""Keyword rules for OS component classification.

The paper classified 1887 vulnerability descriptions by hand into Driver,
Kernel, System Software and Application (Section III-B).  This module encodes
that rationale as keyword rules so the classification can be applied
automatically and reproducibly; :mod:`repro.classify.classifier` applies the
rules in priority order and supports explicit overrides for entries where the
text is ambiguous (the programmatic analogue of a manual decision).

The rule vocabulary follows the criteria quoted in the paper:

* Kernel -- TCP/IP stack and OS-dependent network protocols, file systems,
  process/task management, core libraries, processor-architecture issues;
* Driver -- wireless/wired network cards, video/graphic cards, web cams,
  audio cards, Universal Plug and Play devices;
* System Software -- login, shells and basic daemons shipped by default;
* Application -- bundled software not needed for basic operation (DBMS,
  messengers, editors, web/email/FTP clients and servers, media players,
  language runtimes, antivirus, Kerberos/LDAP, games).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Pattern, Sequence, Tuple

from repro.core.enums import ComponentClass


@dataclass(frozen=True)
class ClassificationRule:
    """A single keyword rule.

    ``priority`` orders rule application (lower value wins first); the first
    matching rule decides the class.
    """

    name: str
    component_class: ComponentClass
    pattern: Pattern[str]
    priority: int = 100

    def matches(self, text: str) -> bool:
        return bool(self.pattern.search(text))


def _rule(
    name: str,
    component_class: ComponentClass,
    keywords: Sequence[str],
    priority: int = 100,
) -> ClassificationRule:
    pattern = re.compile("|".join(rf"(?:{kw})" for kw in keywords), re.IGNORECASE)
    return ClassificationRule(
        name=name, component_class=component_class, pattern=pattern, priority=priority
    )


#: Default rule set, in priority order.  Driver rules come first because
#: driver descriptions frequently also mention the kernel; application rules
#: come before kernel rules for the same reason (e.g. "the Java virtual
#: machine" must not be captured by a generic "virtual memory" keyword).
DEFAULT_RULES: Tuple[ClassificationRule, ...] = (
    _rule(
        "driver-devices",
        ComponentClass.DRIVER,
        (
            r"\bdriver\b",
            r"wireless (?:network )?card",
            r"ethernet adapter",
            r"video|graphic[s]? card",
            r"web ?cam",
            r"audio card",
            r"universal plug and play",
            r"\bupnp\b",
            r"bluetooth adapter",
        ),
        priority=10,
    ),
    _rule(
        "application-bundled",
        ComponentClass.APPLICATION,
        (
            r"web browser",
            r"database management system",
            r"\bdbms\b",
            r"instant messenger|messenger client",
            r"text editor|word processor",
            r"email client|mail client",
            r"ftp client",
            r"media player|music player|video player",
            r"java virtual machine|compiler|programming language",
            r"antivirus",
            r"kerberos|ldap",
            r"\bgame\b|games\b",
            r"office suite",
            r"dns protocol cache poisoning|dns server package",
            r"dhcp daemon",
        ),
        priority=20,
    ),
    _rule(
        "system-software-daemons",
        ComponentClass.SYSTEM_SOFTWARE,
        (
            r"login service|login program",
            r"command shell|\bshell\b",
            r"cron daemon",
            r"syslog",
            r"dhcp client",
            r"dns resolver",
            r"telnet daemon",
            r"ftp daemon",
            r"printing subsystem|print spooler",
            r"\bpam\b|authentication modules",
            r"network configuration utility",
            r"mail transfer agent",
            r"basic daemon",
        ),
        priority=30,
    ),
    _rule(
        "kernel-core",
        ComponentClass.KERNEL,
        (
            r"tcp/ip stack|network stack|tcp state|ipv[46] protocol",
            r"\bkernel\b",
            r"file ?system",
            r"process (?:and task )?management|process scheduler|task management",
            r"core librar",
            r"virtual memory",
            r"system call",
            r"page fault",
            r"signal delivery",
            r"icmp",
            r"loopback",
            r"processor architecture|x86 processors",
        ),
        priority=40,
    ),
)
