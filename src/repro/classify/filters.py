"""Validity filtering and server-configuration filters.

Two filtering stages from the paper:

1. **Validity** (Section III-A): entries whose descriptions are tagged
   ``Unknown`` or ``Unspecified`` or flagged ``** DISPUTED **`` are excluded
   from the study.
2. **Server configuration** (Section IV-B): the three platform profiles --
   *Fat Server* (all vulnerabilities), *Thin Server* (no Application
   vulnerabilities) and *Isolated Thin Server* (no Application and only
   remotely-exploitable vulnerabilities).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.enums import ServerConfiguration, ValidityStatus
from repro.core.models import VulnerabilityEntry

_UNKNOWN_RE = re.compile(r"\bunknown\b", re.IGNORECASE)
_UNSPECIFIED_RE = re.compile(r"\bunspecified\b", re.IGNORECASE)
_DISPUTED_RE = re.compile(r"\*\*\s*disputed\s*\*\*", re.IGNORECASE)


class ValidityFilter:
    """Detects and removes Unknown / Unspecified / Disputed entries."""

    def status_for_text(self, text: str) -> ValidityStatus:
        """Validity status implied by a description text."""
        if _DISPUTED_RE.search(text):
            return ValidityStatus.DISPUTED
        if _UNSPECIFIED_RE.search(text):
            return ValidityStatus.UNSPECIFIED
        if _UNKNOWN_RE.search(text):
            return ValidityStatus.UNKNOWN
        return ValidityStatus.VALID

    def annotate(self, entries: Iterable[VulnerabilityEntry]) -> List[VulnerabilityEntry]:
        """Return copies of the entries with validity statuses assigned."""
        out: List[VulnerabilityEntry] = []
        for entry in entries:
            out.append(entry.with_validity(self.status_for_text(entry.summary)))
        return out

    def split(
        self, entries: Iterable[VulnerabilityEntry]
    ) -> Tuple[List[VulnerabilityEntry], List[VulnerabilityEntry]]:
        """Split entries into (valid, excluded), annotating on the way."""
        annotated = self.annotate(entries)
        valid = [entry for entry in annotated if entry.is_valid]
        excluded = [entry for entry in annotated if not entry.is_valid]
        return valid, excluded

    def exclusion_counts(
        self, entries: Iterable[VulnerabilityEntry]
    ) -> Dict[ValidityStatus, int]:
        """Histogram of validity statuses (distinct entries)."""
        counts: Dict[ValidityStatus, int] = {status: 0 for status in ValidityStatus}
        for entry in self.annotate(entries):
            counts[entry.validity] += 1
        return counts


@dataclass(frozen=True)
class ServerConfigurationFilter:
    """Predicate selecting the vulnerabilities relevant to a configuration."""

    configuration: ServerConfiguration

    def admits(self, entry: VulnerabilityEntry) -> bool:
        """Whether the entry is relevant for this server configuration.

        Only valid entries are ever admitted; a Thin Server drops Application
        vulnerabilities and an Isolated Thin Server additionally drops
        locally-exploitable ones.
        """
        if not entry.is_valid:
            return False
        if self.configuration.excludes_applications and entry.is_application:
            return False
        if self.configuration.excludes_local and not entry.is_remote:
            return False
        return True

    def apply(self, entries: Iterable[VulnerabilityEntry]) -> List[VulnerabilityEntry]:
        return [entry for entry in entries if self.admits(entry)]

    def __call__(self, entry: VulnerabilityEntry) -> bool:
        return self.admits(entry)


def fat_server() -> ServerConfigurationFilter:
    """Filter for the *Fat Server* profile (all valid vulnerabilities)."""
    return ServerConfigurationFilter(ServerConfiguration.FAT)


def thin_server() -> ServerConfigurationFilter:
    """Filter for the *Thin Server* profile (no Application vulnerabilities)."""
    return ServerConfigurationFilter(ServerConfiguration.THIN)


def isolated_thin_server() -> ServerConfigurationFilter:
    """Filter for the *Isolated Thin Server* profile (remote, non-Application)."""
    return ServerConfigurationFilter(ServerConfiguration.ISOLATED_THIN)


def configuration_filters() -> Sequence[ServerConfigurationFilter]:
    """The three paper configurations, in Table III column order."""
    return (fat_server(), thin_server(), isolated_thin_server())
