"""Vulnerability classification and filtering.

Reimplements the manual analysis steps of Section III of the paper:

* :mod:`repro.classify.rules` / :mod:`repro.classify.classifier` -- assign
  each vulnerability to one of the four OS component classes (Driver, Kernel,
  System Software, Application) from its description text, with support for
  manual overrides.
* :mod:`repro.classify.filters` -- the validity filter (Unknown /
  Unspecified / Disputed exclusion) and the three server-configuration
  filters (Fat, Thin and Isolated Thin Server).
"""

from repro.classify.classifier import ComponentClassifier
from repro.classify.filters import (
    ServerConfigurationFilter,
    ValidityFilter,
    fat_server,
    isolated_thin_server,
    thin_server,
)
from repro.classify.rules import DEFAULT_RULES, ClassificationRule

__all__ = [
    "ComponentClassifier",
    "ClassificationRule",
    "DEFAULT_RULES",
    "ValidityFilter",
    "ServerConfigurationFilter",
    "fat_server",
    "thin_server",
    "isolated_thin_server",
]
