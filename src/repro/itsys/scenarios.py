"""Composable adversary scenario library for :class:`CompromiseSimulation`.

The paper's simulator (and :meth:`CompromiseSimulation.run_configuration`)
models a *single* adversary throwing one exploit at a time from a Poisson or
Weibull-aging renewal process.  This module grows that into a small library
of richer adversary *scenarios*, each decomposed into the same two pluggable
pieces:

* an :class:`ArrivalModel` -- *when* exploit events happen.  Implementations
  yield strictly increasing absolute event times drawn from the per-run
  ``random.Random`` stream (one gap draw per event, in a documented order),
  so scenario runs keep the bit-for-bit seed-splitting contract of
  :meth:`CompromiseSimulation.run_range`.
* an :class:`AdversaryPolicy` -- *what* each event does.  Implementations
  pick the exploit that lands (or ``None`` for a fizzled attempt) and may
  propagate damage after a successful landing, all over the precompiled
  :class:`repro.analysis.engine.ReplicaIncidence` victim bitmasks.

Four scenario families are provided, selected by :class:`ScenarioSpec`:

``campaign``
    Coordinated multi-adversary campaign: ``adversaries`` independent
    attackers share the exploit pool, each running its own renewal process;
    their event streams are superposed into one timeline (merged in time
    order, ties broken by adversary index).
``patch-race``
    Vulnerabilities close over time while the attacker races the patch.  At
    run start a closure time is drawn for every pool entry -- either from a
    Gompertz-style increasing hazard (``closure="gompertz"``) or resampled
    from empirically observed lifetimes (``closure="empirical"``, e.g. from
    :func:`repro.snapshots.closure_lifetimes` over the snapshot ledger).
    An exploit thrown after its vulnerability closed fizzles.
``epidemic``
    Cross-replica propagation over the compiled incidence structure: after
    each primary infection, every currently compromised replica infects --
    with probability ``spread`` -- all replicas sharing a vulnerability with
    it (the OR of the victim masks covering that replica).
``adaptive``
    An adversary that re-targets using the live incidence matrix:
    with probability ``explore`` it throws a uniformly random exploit,
    otherwise the exploit maximising the number of *newly* compromised
    replicas given the current compromise mask (lowest pool index wins
    ties).

Every family consumes only the per-run RNG it is handed, so scenario
campaigns stay mergeable (:class:`RunRangeTallies`), cacheable
(:mod:`repro.runner.cache`) and sweepable (:class:`repro.runner.grid
.ExperimentGrid` grows a scenario axis); ``workers=1`` and ``workers=N``
merged results are byte-identical per seed, property-tested by
``tests/itsys/test_scenarios.py`` and ``tests/runner/test_scenario_parallel.py``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core.exceptions import SimulationError

#: Scenario families understood by :class:`ScenarioSpec`.
SCENARIOS: Tuple[str, ...] = ("campaign", "patch-race", "epidemic", "adaptive")

#: Patch-closure models understood by the ``patch-race`` family.
CLOSURE_MODELS: Tuple[str, ...] = ("gompertz", "empirical")

#: A gap sampler: draws one inter-arrival gap from the given RNG.
GapSampler = Callable[["_Random"], float]

# Typing alias kept local to avoid importing random at module scope for a
# type annotation only.
_Random = "random.Random"


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one adversary scenario.

    Knobs that do not apply to the selected ``family`` are normalised back
    to their defaults (mirroring :class:`repro.runner.grid.ArrivalSpec`), so
    two specs that behave identically always compare -- and therefore cache
    and deduplicate -- as equal.

    ``lifetimes`` (the ``closure="empirical"`` sample pool) is stored
    sorted ascending; the empirical sampler draws by index from the sorted
    tuple, making the draw independent of the order lifetimes were
    collected in.
    """

    family: str
    #: ``campaign``: number of coordinated adversaries sharing the pool.
    adversaries: int = 2
    #: ``patch-race``: closure-time model (``"gompertz"`` or ``"empirical"``).
    closure: str = "gompertz"
    #: ``patch-race``/gompertz: time scale of the closure hazard.
    closure_scale: float = 2.0
    #: ``patch-race``/gompertz: hazard shape (larger closes vulns faster).
    closure_shape: float = 1.0
    #: ``patch-race``/empirical: observed lifetimes to resample from.
    lifetimes: Tuple[float, ...] = ()
    #: ``epidemic``: per-replica propagation probability after each landing.
    spread: float = 0.25
    #: ``adaptive``: probability of a uniformly random (exploring) throw.
    explore: float = 0.25

    def __post_init__(self) -> None:
        if self.family not in SCENARIOS:
            raise SimulationError(
                f"unknown scenario family {self.family!r}; "
                f"expected one of {SCENARIOS}"
            )
        set_ = object.__setattr__
        if self.family == "campaign":
            if int(self.adversaries) != self.adversaries or self.adversaries < 1:
                raise SimulationError(
                    "a campaign scenario needs at least one adversary"
                )
            set_(self, "adversaries", int(self.adversaries))
        else:
            set_(self, "adversaries", 2)
        if self.family == "patch-race":
            if self.closure not in CLOSURE_MODELS:
                raise SimulationError(
                    f"unknown closure model {self.closure!r}; "
                    f"expected one of {CLOSURE_MODELS}"
                )
            if self.closure == "empirical":
                if not self.lifetimes:
                    raise SimulationError(
                        "an empirical patch-race scenario needs observed "
                        "lifetimes (see repro.snapshots.closure_lifetimes)"
                    )
                if any(value <= 0 for value in self.lifetimes):
                    raise SimulationError("closure lifetimes must be positive")
                set_(
                    self,
                    "lifetimes",
                    tuple(sorted(float(value) for value in self.lifetimes)),
                )
                set_(self, "closure_scale", 2.0)
                set_(self, "closure_shape", 1.0)
            else:
                if self.closure_scale <= 0 or self.closure_shape <= 0:
                    raise SimulationError(
                        "gompertz closure scale and shape must be positive"
                    )
                set_(self, "closure_scale", float(self.closure_scale))
                set_(self, "closure_shape", float(self.closure_shape))
                set_(self, "lifetimes", ())
        else:
            set_(self, "closure", "gompertz")
            set_(self, "closure_scale", 2.0)
            set_(self, "closure_shape", 1.0)
            set_(self, "lifetimes", ())
        if self.family == "epidemic":
            if not 0.0 < self.spread <= 1.0:
                raise SimulationError(
                    "the epidemic spread probability must be in (0, 1]"
                )
            set_(self, "spread", float(self.spread))
        else:
            set_(self, "spread", 0.25)
        if self.family == "adaptive":
            if not 0.0 <= self.explore <= 1.0:
                raise SimulationError(
                    "the adaptive explore probability must be in [0, 1]"
                )
            set_(self, "explore", float(self.explore))
        else:
            set_(self, "explore", 0.25)

    @property
    def label(self) -> str:
        """Short human-readable identifier, used in cell ids and CSV rows."""
        if self.family == "campaign":
            return f"campaign(n={self.adversaries})"
        if self.family == "patch-race":
            if self.closure == "empirical":
                return f"patch-race(empirical,{len(self.lifetimes)})"
            return (
                f"patch-race(gompertz,s={self.closure_scale:g},"
                f"k={self.closure_shape:g})"
            )
        if self.family == "epidemic":
            return f"epidemic(p={self.spread:g})"
        return f"adaptive(eps={self.explore:g})"

    def params(self) -> dict:
        """Canonical JSON-safe parameter dict (cache keys, CLI payloads)."""
        return {
            "family": self.family,
            "adversaries": self.adversaries,
            "closure": self.closure,
            "closure_scale": self.closure_scale,
            "closure_shape": self.closure_shape,
            "lifetimes": list(self.lifetimes),
            "spread": self.spread,
            "explore": self.explore,
        }


def parse_scenario(text: str) -> ScenarioSpec:
    """Parse a CLI scenario token ``family[:key=value[,key=value...]]``.

    Recognised keys: ``adversaries`` (campaign), ``closure``/``scale``/
    ``shape``/``lifetimes`` (patch-race; ``lifetimes`` is ``;``-separated),
    ``spread`` (epidemic) and ``explore`` (adaptive).  Examples::

        campaign:adversaries=3
        patch-race:closure=gompertz,scale=1.5,shape=2
        patch-race:closure=empirical,lifetimes=0.5;1.25;4
        epidemic:spread=0.4
        adaptive:explore=0.1
    """
    family, _, rest = text.strip().partition(":")
    family = family.strip()
    kwargs: dict = {}
    if rest:
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not key or not value:
                raise SimulationError(
                    f"malformed scenario option {item!r} in {text!r}; "
                    "expected key=value"
                )
            try:
                if key == "adversaries":
                    kwargs["adversaries"] = int(value)
                elif key == "closure":
                    kwargs["closure"] = value
                elif key == "scale":
                    kwargs["closure_scale"] = float(value)
                elif key == "shape":
                    kwargs["closure_shape"] = float(value)
                elif key == "lifetimes":
                    kwargs["lifetimes"] = tuple(
                        float(part) for part in value.split(";") if part
                    )
                elif key == "spread":
                    kwargs["spread"] = float(value)
                elif key == "explore":
                    kwargs["explore"] = float(value)
                else:
                    raise SimulationError(
                        f"unknown scenario option {key!r} in {text!r}"
                    )
            except ValueError as error:
                raise SimulationError(
                    f"invalid scenario option value {item!r} in {text!r}"
                ) from error
    return ScenarioSpec(family=family, **kwargs)


def gompertz_closure_time(rng, scale: float, shape: float) -> float:
    """One closure time from the Gompertz hazard via inverse-CDF sampling.

    CDF ``F(t) = 1 - exp(-shape * (exp(t / scale) - 1))`` -- an increasing
    hazard, the qualitative shape the Beta-Gompertz vulnerability-lifetime
    literature fits to patch-closure data: the longer a vulnerability has
    been public, the likelier it closes soon.  Consumes exactly one
    ``rng.random()`` draw.
    """
    u = rng.random()
    return scale * math.log1p(-math.log1p(-u) / shape)


# -- arrival models ---------------------------------------------------------------


class ArrivalModel:
    """Yields strictly increasing absolute event times for one run.

    Implementations draw only from the RNG passed to :meth:`events` and
    document their draw order, preserving run-seed determinism.
    """

    def events(self, rng, horizon: float) -> Iterator[float]:
        raise NotImplementedError


class RenewalArrivals(ArrivalModel):
    """Single renewal stream: successive gaps from one sampler."""

    __slots__ = ("_draw_gap",)

    def __init__(self, draw_gap: Callable) -> None:
        self._draw_gap = draw_gap

    def events(self, rng, horizon: float) -> Iterator[float]:
        time = 0.0
        while True:
            time += self._draw_gap(rng)
            if time > horizon:
                return
            yield time


class SuperposedArrivals(ArrivalModel):
    """Merged timeline of several independent renewal streams.

    Draw order is fully determined: one opening gap per stream in stream
    order, then -- each time a stream's event is emitted -- that stream's
    next gap.  Simultaneous events order by stream index, so the merged
    stream is a pure function of the run RNG.
    """

    __slots__ = ("_draw_gap", "_streams")

    def __init__(self, draw_gap: Callable, streams: int) -> None:
        if streams < 1:
            raise SimulationError("a superposed arrival needs >= 1 streams")
        self._draw_gap = draw_gap
        self._streams = streams

    def events(self, rng, horizon: float) -> Iterator[float]:
        pending: List[Tuple[float, int]] = []
        for stream in range(self._streams):
            time = self._draw_gap(rng)
            if time <= horizon:
                pending.append((time, stream))
        heapq.heapify(pending)
        while pending:
            time, stream = heapq.heappop(pending)
            yield time
            nxt = time + self._draw_gap(rng)
            if nxt <= horizon:
                heapq.heappush(pending, (nxt, stream))


# -- adversary policies -----------------------------------------------------------


class AdversaryPolicy:
    """Picks which exploit lands at each arrival and propagates damage.

    :meth:`reset` is called once per run before any event (with the run
    RNG); :meth:`choose` returns a pool index or ``None`` for a fizzled
    attempt; :meth:`propagate` maps the post-landing compromise mask to a
    (possibly larger) mask.  Implementations draw only from the RNG they
    are handed.
    """

    def reset(self, rng) -> None:
        """Per-run initialisation; default: nothing."""

    def choose(self, rng, now: float, compromised: int) -> Optional[int]:
        raise NotImplementedError

    def propagate(self, rng, compromised: int) -> int:
        """Post-landing spread; default: no propagation."""
        return compromised


class UniformPolicy(AdversaryPolicy):
    """The classic adversary: every event throws a uniformly random exploit."""

    __slots__ = ("_pool_indices",)

    def __init__(self, pool_size: int) -> None:
        self._pool_indices = range(pool_size)

    def choose(self, rng, now: float, compromised: int) -> Optional[int]:
        return rng.choice(self._pool_indices)


class PatchRacePolicy(AdversaryPolicy):
    """Uniform targeting against a pool whose entries close over time.

    :meth:`reset` draws one closure time per pool entry, in pool order
    (one RNG draw each); an exploit chosen after its entry closed fizzles.
    """

    __slots__ = ("_spec", "_pool_size", "_closures")

    def __init__(self, spec: ScenarioSpec, pool_size: int) -> None:
        self._spec = spec
        self._pool_size = pool_size
        self._closures: Tuple[float, ...] = ()

    def reset(self, rng) -> None:
        spec = self._spec
        if spec.closure == "empirical":
            lifetimes = spec.lifetimes
            self._closures = tuple(
                rng.choice(lifetimes) for _ in range(self._pool_size)
            )
        else:
            self._closures = tuple(
                gompertz_closure_time(rng, spec.closure_scale, spec.closure_shape)
                for _ in range(self._pool_size)
            )

    def choose(self, rng, now: float, compromised: int) -> Optional[int]:
        index = rng.choice(range(self._pool_size))
        if self._closures[index] < now:
            return None  # the patch won the race for this vulnerability
        return index


class EpidemicPolicy(AdversaryPolicy):
    """Uniform targeting plus cross-replica propagation after each landing.

    ``adjacency[r]`` is the OR of every victim mask covering replica ``r``:
    the replicas reachable from ``r`` through at least one shared
    vulnerability.  After a landing, each compromised replica (ascending
    bit order, one RNG draw each) infects its neighbourhood with
    probability ``spread``.
    """

    __slots__ = ("_pool_indices", "_adjacency", "_spread")

    def __init__(
        self, spec: ScenarioSpec, victim_masks: Sequence[int], replicas: int
    ) -> None:
        self._pool_indices = range(len(victim_masks))
        adjacency = []
        for replica in range(replicas):
            bit = 1 << replica
            reachable = 0
            for mask in victim_masks:
                if mask & bit:
                    reachable |= mask
            adjacency.append(reachable)
        self._adjacency = tuple(adjacency)
        self._spread = spec.spread

    def choose(self, rng, now: float, compromised: int) -> Optional[int]:
        return rng.choice(self._pool_indices)

    def propagate(self, rng, compromised: int) -> int:
        adjacency = self._adjacency
        for replica in range(len(adjacency)):
            if compromised & (1 << replica):
                if rng.random() < self._spread:
                    compromised |= adjacency[replica]
        return compromised


class AdaptivePolicy(AdversaryPolicy):
    """Epsilon-greedy re-targeting over the live incidence structure.

    Each event draws one uniform variate: with probability ``explore`` the
    throw is uniformly random (a second draw), otherwise it is the exploit
    whose victim mask newly compromises the most replicas given the current
    mask (lowest pool index wins ties) -- the adversary reading the pair
    matrix and aiming where diversity is thinnest.
    """

    __slots__ = ("_victim_masks", "_pool_indices", "_explore")

    def __init__(self, spec: ScenarioSpec, victim_masks: Sequence[int]) -> None:
        self._victim_masks = tuple(victim_masks)
        self._pool_indices = range(len(victim_masks))
        self._explore = spec.explore

    def choose(self, rng, now: float, compromised: int) -> Optional[int]:
        if rng.random() < self._explore:
            return rng.choice(self._pool_indices)
        best_index = 0
        best_damage = -1
        for index, mask in enumerate(self._victim_masks):
            damage = (mask & ~compromised).bit_count()
            if damage > best_damage:
                best_damage = damage
                best_index = index
        return best_index


def build_scenario(
    spec: ScenarioSpec,
    draw_gap: Callable,
    victim_masks: Sequence[int],
    replicas: int,
) -> Tuple[ArrivalModel, AdversaryPolicy]:
    """Compile a spec into its (arrival model, adversary policy) pair.

    ``draw_gap`` is the base inter-arrival sampler (the campaign's
    ``arrival``/``shape``/``exploit_rate`` knobs compose with every
    scenario); ``victim_masks`` is the compiled incidence of the targeted
    pool over the replica group.
    """
    pool_size = len(victim_masks)
    if spec.family == "campaign":
        return (
            SuperposedArrivals(draw_gap, spec.adversaries),
            UniformPolicy(pool_size),
        )
    if spec.family == "patch-race":
        return RenewalArrivals(draw_gap), PatchRacePolicy(spec, pool_size)
    if spec.family == "epidemic":
        return (
            RenewalArrivals(draw_gap),
            EpidemicPolicy(spec, victim_masks, replicas),
        )
    return RenewalArrivals(draw_gap), AdaptivePolicy(spec, victim_masks)
