"""Attacker model: exploit-arrival processes over a vulnerability corpus.

The paper argues that a single attack can compromise several replicas only
when they share the exploited vulnerability.  The attacker model here makes
that concrete: exploits arrive over simulated time, each targeting one
vulnerability drawn from a corpus; the damage an exploit does to a replica
group is exactly the set of replicas whose OS is affected and unpatched.

Two arrival processes are provided:

* a **Poisson** process with a configurable rate (exploit development is an
  external random process, the common assumption in stochastic security
  models);
* a **publication-driven** process that replays the corpus in publication
  order, one exploit per vulnerability, optionally with a 0-day lead time
  (the paper's focus on undisclosed vulnerabilities).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.enums import ServerConfiguration
from repro.core.exceptions import SimulationError
from repro.core.models import VulnerabilityEntry
from repro.classify.filters import ServerConfigurationFilter


@dataclass(frozen=True)
class ExploitEvent:
    """One weaponised vulnerability arriving at a point in simulated time."""

    time: float
    cve_id: str
    affected_os: FrozenSet[str]
    remote: bool

    @property
    def breadth(self) -> int:
        return len(self.affected_os)


class Attacker:
    """Generates exploit events from a vulnerability corpus."""

    def __init__(
        self,
        entries: Iterable[VulnerabilityEntry],
        configuration: ServerConfiguration = ServerConfiguration.ISOLATED_THIN,
        seed: int = 1,
    ) -> None:
        config_filter = ServerConfigurationFilter(configuration)
        self._pool: List[VulnerabilityEntry] = [
            entry for entry in entries if config_filter.admits(entry)
        ]
        if not self._pool:
            raise SimulationError("the attacker has no exploitable vulnerabilities")
        self._rng = random.Random(seed)

    @property
    def pool_size(self) -> int:
        return len(self._pool)

    def pool_for_os(self, os_name: str) -> List[VulnerabilityEntry]:
        """Vulnerabilities in the attacker's pool affecting a specific OS."""
        return [entry for entry in self._pool if entry.affects(os_name)]

    # -- arrival processes ---------------------------------------------------------

    def poisson_campaign(
        self,
        rate: float,
        horizon: float,
        targeted_os: Optional[Sequence[str]] = None,
    ) -> List[ExploitEvent]:
        """Exploit events from a Poisson process of the given rate.

        ``rate`` is the expected number of new exploits per unit of simulated
        time and ``horizon`` the campaign length.  With ``targeted_os`` the
        attacker only weaponises vulnerabilities affecting at least one of the
        listed OSes (a focused adversary).
        """
        if rate <= 0:
            raise SimulationError("the exploit arrival rate must be positive")
        if horizon <= 0:
            raise SimulationError("the campaign horizon must be positive")
        pool = self._pool
        if targeted_os is not None:
            targets = set(targeted_os)
            pool = [entry for entry in pool if entry.affected_os & targets]
            if not pool:
                return []
        events: List[ExploitEvent] = []
        time = 0.0
        while True:
            time += self._rng.expovariate(rate)
            if time > horizon:
                break
            entry = self._rng.choice(pool)
            events.append(
                ExploitEvent(
                    time=time,
                    cve_id=entry.cve_id,
                    affected_os=frozenset(entry.affected_os),
                    remote=entry.is_remote,
                )
            )
        return events

    def publication_replay(
        self,
        zero_day_lead: float = 0.0,
        time_unit_days: float = 1.0,
    ) -> List[ExploitEvent]:
        """Replay the corpus in publication order, one exploit per entry.

        Exploit times are measured in simulated days from the earliest
        publication date; ``zero_day_lead`` shifts every exploit earlier to
        model attacks that precede disclosure.
        """
        if time_unit_days <= 0:
            raise SimulationError("time_unit_days must be positive")
        ordered = sorted(self._pool, key=lambda entry: (entry.published, entry.cve_id))
        origin = ordered[0].published
        events: List[ExploitEvent] = []
        for entry in ordered:
            offset_days = (entry.published - origin).days
            time = max(0.0, offset_days / time_unit_days - zero_day_lead)
            events.append(
                ExploitEvent(
                    time=time,
                    cve_id=entry.cve_id,
                    affected_os=frozenset(entry.affected_os),
                    remote=entry.is_remote,
                )
            )
        return events

    # -- single-shot adversary ----------------------------------------------------------

    def best_single_exploit(self, os_names: Sequence[str]) -> Tuple[Optional[str], int]:
        """The exploit compromising the most replicas of a group in one shot.

        Returns ``(cve_id, number_of_distinct_group_OSes_affected)``; a smart
        adversary attacking a diverse group starts from exactly this
        vulnerability.
        """
        best_id: Optional[str] = None
        best_coverage = 0
        group = list(os_names)
        for entry in self._pool:
            coverage = len({name for name in group if entry.affects(name)})
            if coverage > best_coverage or (
                coverage == best_coverage and best_id is not None and entry.cve_id < best_id
            ):
                if coverage >= best_coverage:
                    best_id, best_coverage = entry.cve_id, coverage
        return best_id, best_coverage
