"""Attacker model: exploit-arrival processes over a vulnerability corpus.

The paper argues that a single attack can compromise several replicas only
when they share the exploited vulnerability.  The attacker model here makes
that concrete: exploits arrive over simulated time, each targeting one
vulnerability drawn from a corpus; the damage an exploit does to a replica
group is exactly the set of replicas whose OS is affected and unpatched.

Two arrival processes are provided:

* a **Poisson** process with a configurable rate (exploit development is an
  external random process, the common assumption in stochastic security
  models);
* a **publication-driven** process that replays the corpus in publication
  order, one exploit per vulnerability, optionally with a 0-day lead time
  (the paper's focus on undisclosed vulnerabilities);
* an **aging** (Weibull/Gompertz-style) process whose inter-arrival hazard
  changes over time: ``shape > 1`` models an attacker whose exploit
  production matures during the campaign, ``shape < 1`` an initial burst
  that tails off (``shape == 1`` degenerates to Poisson).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.enums import ServerConfiguration
from repro.core.exceptions import SimulationError
from repro.core.models import VulnerabilityEntry
from repro.classify.filters import ServerConfigurationFilter


@dataclass(frozen=True)
class ExploitEvent:
    """One weaponised vulnerability arriving at a point in simulated time."""

    time: float
    cve_id: str
    affected_os: FrozenSet[str]
    remote: bool

    @property
    def breadth(self) -> int:
        return len(self.affected_os)


def best_exploit_entry(
    pool: Sequence[VulnerabilityEntry], os_names: Sequence[str]
) -> Tuple[Optional[VulnerabilityEntry], int]:
    """The pool entry compromising the most distinct OSes of a group.

    Returns ``(entry, coverage)`` where ``coverage`` is the number of
    distinct group OSes the entry affects (``(None, 0)`` when nothing in the
    pool touches the group).  Ties are broken towards the smallest CVE id,
    so the choice is deterministic regardless of pool order.  Shared by
    :meth:`Attacker.best_single_exploit` and the bitset simulation engine,
    which must pick the same opening exploit as the naive path.
    """
    best_entry: Optional[VulnerabilityEntry] = None
    best_coverage = 0
    group = list(os_names)
    for entry in pool:
        coverage = len({name for name in group if entry.affects(name)})
        if coverage == 0:
            continue
        if (
            best_entry is None
            or coverage > best_coverage
            or (coverage == best_coverage and entry.cve_id < best_entry.cve_id)
        ):
            best_entry, best_coverage = entry, coverage
    return best_entry, best_coverage


class Attacker:
    """Generates exploit events from a vulnerability corpus."""

    def __init__(
        self,
        entries: Iterable[VulnerabilityEntry],
        configuration: ServerConfiguration = ServerConfiguration.ISOLATED_THIN,
        seed: int = 1,
    ) -> None:
        config_filter = ServerConfigurationFilter(configuration)
        self._pool: List[VulnerabilityEntry] = [
            entry for entry in entries if config_filter.admits(entry)
        ]
        if not self._pool:
            raise SimulationError("the attacker has no exploitable vulnerabilities")
        self._rng = random.Random(seed)

    @property
    def pool_size(self) -> int:
        return len(self._pool)

    def pool_for_os(self, os_name: str) -> List[VulnerabilityEntry]:
        """Vulnerabilities in the attacker's pool affecting a specific OS."""
        return [entry for entry in self._pool if entry.affects(os_name)]

    def targeted_pool(
        self, targeted_os: Optional[Sequence[str]]
    ) -> List[VulnerabilityEntry]:
        """The pool restricted to entries affecting at least one listed OS.

        ``None`` means an unfocused adversary: the whole pool.  Pool order is
        preserved, which matters for seeded reproducibility (exploits are
        drawn by index).
        """
        if targeted_os is None:
            return self._pool
        targets = set(targeted_os)
        return [entry for entry in self._pool if entry.affected_os & targets]

    # -- arrival processes ---------------------------------------------------------

    def poisson_campaign(
        self,
        rate: float,
        horizon: float,
        targeted_os: Optional[Sequence[str]] = None,
    ) -> List[ExploitEvent]:
        """Exploit events from a Poisson process of the given rate.

        ``rate`` is the expected number of new exploits per unit of simulated
        time and ``horizon`` the campaign length.  With ``targeted_os`` the
        attacker only weaponises vulnerabilities affecting at least one of the
        listed OSes (a focused adversary).
        """
        if rate <= 0:
            raise SimulationError("the exploit arrival rate must be positive")
        if horizon <= 0:
            raise SimulationError("the campaign horizon must be positive")
        pool = self.targeted_pool(targeted_os)
        if not pool:
            return []
        events: List[ExploitEvent] = []
        time = 0.0
        while True:
            time += self._rng.expovariate(rate)
            if time > horizon:
                break
            entry = self._rng.choice(pool)
            events.append(
                ExploitEvent(
                    time=time,
                    cve_id=entry.cve_id,
                    affected_os=frozenset(entry.affected_os),
                    remote=entry.is_remote,
                )
            )
        return events

    def aging_campaign(
        self,
        rate: float,
        shape: float,
        horizon: float,
        targeted_os: Optional[Sequence[str]] = None,
    ) -> List[ExploitEvent]:
        """Exploit events with Weibull-distributed inter-arrival times.

        The inter-arrival scale is ``1 / rate`` (so ``shape == 1`` is exactly
        the Poisson process of :meth:`poisson_campaign` up to the RNG stream);
        ``shape > 1`` models a maturing/aging attacker whose exploits arrive
        increasingly regularly (Gompertz-style increasing hazard between
        arrivals), ``shape < 1`` an early burst with a heavy quiet tail.
        """
        if rate <= 0:
            raise SimulationError("the exploit arrival rate must be positive")
        if shape <= 0:
            raise SimulationError("the inter-arrival shape must be positive")
        if horizon <= 0:
            raise SimulationError("the campaign horizon must be positive")
        pool = self.targeted_pool(targeted_os)
        if not pool:
            return []
        scale = 1.0 / rate
        events: List[ExploitEvent] = []
        time = 0.0
        while True:
            time += self._rng.weibullvariate(scale, shape)
            if time > horizon:
                break
            entry = self._rng.choice(pool)
            events.append(
                ExploitEvent(
                    time=time,
                    cve_id=entry.cve_id,
                    affected_os=frozenset(entry.affected_os),
                    remote=entry.is_remote,
                )
            )
        return events

    def publication_replay(
        self,
        zero_day_lead: float = 0.0,
        time_unit_days: float = 1.0,
    ) -> List[ExploitEvent]:
        """Replay the corpus in publication order, one exploit per entry.

        Exploit times are measured in simulated days from the earliest
        publication date; ``zero_day_lead`` shifts every exploit earlier to
        model attacks that precede disclosure.
        """
        if time_unit_days <= 0:
            raise SimulationError("time_unit_days must be positive")
        ordered = sorted(self._pool, key=lambda entry: (entry.published, entry.cve_id))
        origin = ordered[0].published
        events: List[ExploitEvent] = []
        for entry in ordered:
            offset_days = (entry.published - origin).days
            time = max(0.0, offset_days / time_unit_days - zero_day_lead)
            events.append(
                ExploitEvent(
                    time=time,
                    cve_id=entry.cve_id,
                    affected_os=frozenset(entry.affected_os),
                    remote=entry.is_remote,
                )
            )
        return events

    # -- single-shot adversary ----------------------------------------------------------

    def best_single_exploit(self, os_names: Sequence[str]) -> Tuple[Optional[str], int]:
        """The exploit compromising the most replicas of a group in one shot.

        Returns ``(cve_id, number_of_distinct_group_OSes_affected)``; a smart
        adversary attacking a diverse group starts from exactly this
        vulnerability.
        """
        entry, coverage = best_exploit_entry(self._pool, os_names)
        return (entry.cve_id if entry is not None else None), coverage

    def opening_exploit(
        self, os_names: Sequence[str], time: float = 0.0
    ) -> Optional[ExploitEvent]:
        """The smart adversary's first move: weaponise the best single exploit.

        Returns an :class:`ExploitEvent` at ``time`` for the vulnerability
        that compromises the most distinct OSes of the group, or ``None``
        when no pool entry affects the group at all.
        """
        entry, _coverage = best_exploit_entry(self._pool, os_names)
        if entry is None:
            return None
        return ExploitEvent(
            time=time,
            cve_id=entry.cve_id,
            affected_os=frozenset(entry.affected_os),
            remote=entry.is_remote,
        )
