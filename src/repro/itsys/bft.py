"""A quorum-based BFT state-machine-replication service model.

This is not a full protocol implementation with message exchanges; it is the
abstraction the paper reasons about: a service replicated over ``n = 3f+1``
(or ``2f+1``) replicas that executes client requests as long as a quorum of
correct replicas exists and whose *safety* is lost once more than ``f``
replicas are compromised (compromised replicas can then equivocate and the
correct quorum intersection argument no longer holds).

The model tracks, over a sequence of exploit events:

* when (if ever) safety is violated;
* when (if ever) liveness is lost (fewer than a quorum of correct replicas);
* the request log agreed so far (requests executed while a correct quorum
  existed), so tests can assert that agreed entries never change afterwards.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import SimulationError
from repro.itsys.attacker import ExploitEvent
from repro.itsys.replica import ReplicaGroup


class ServiceState(str, enum.Enum):
    """Externally observable health of the replicated service."""

    CORRECT = "correct"
    DEGRADED = "degraded"          # some replicas compromised, still <= f
    SAFETY_VIOLATED = "safety-violated"  # more than f compromised

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ExecutionRecord:
    """One client request executed by the service."""

    sequence_number: int
    time: float
    quorum: Tuple[int, ...]  # replica ids that formed the quorum


@dataclass
class ServiceTimeline:
    """What happened to the service during a campaign."""

    state: ServiceState
    compromised_events: List[Tuple[float, str, int]] = field(default_factory=list)
    safety_violation_time: Optional[float] = None
    liveness_loss_time: Optional[float] = None
    executed: List[ExecutionRecord] = field(default_factory=list)
    #: Highest number of simultaneously compromised replicas observed at any
    #: point of the campaign.  Unlike the group's *final* compromised count,
    #: this is not reset by proactive recovery, so it is the right quantity
    #: for damage statistics under a ``recovery_interval``.
    peak_compromised: int = 0

    @property
    def survived(self) -> bool:
        return self.state is not ServiceState.SAFETY_VIOLATED


class BFTService:
    """The replicated service built on top of a :class:`ReplicaGroup`."""

    def __init__(self, group: ReplicaGroup) -> None:
        self.group = group
        self._sequence = 0
        self._log: List[ExecutionRecord] = []

    # -- request execution -----------------------------------------------------------

    @property
    def log(self) -> Sequence[ExecutionRecord]:
        return tuple(self._log)

    def can_make_progress(self) -> bool:
        """Whether a quorum of correct replicas is available (liveness)."""
        return len(self.group.correct_replicas()) >= self.group.quorum_size

    def is_safe(self) -> bool:
        """Whether the safety condition (at most f compromised) still holds."""
        return not self.group.safety_violated

    def execute_request(self, time: float) -> ExecutionRecord:
        """Execute one client request (requires liveness and safety)."""
        if not self.is_safe():
            raise SimulationError("cannot execute requests on a compromised service")
        if not self.can_make_progress():
            raise SimulationError("no quorum of correct replicas is available")
        quorum = tuple(
            replica.replica_id
            for replica in self.group.correct_replicas()[: self.group.quorum_size]
        )
        self._sequence += 1
        record = ExecutionRecord(sequence_number=self._sequence, time=time, quorum=quorum)
        self._log.append(record)
        return record

    # -- campaign processing ------------------------------------------------------------

    def state(self) -> ServiceState:
        if self.group.safety_violated:
            return ServiceState.SAFETY_VIOLATED
        if self.group.compromised_count() > 0:
            return ServiceState.DEGRADED
        return ServiceState.CORRECT

    def run_campaign(
        self,
        exploits: Sequence[ExploitEvent],
        request_interval: Optional[float] = None,
        recovery_interval: Optional[float] = None,
        horizon: Optional[float] = None,
    ) -> ServiceTimeline:
        """Process a campaign of exploit events against the service.

        ``request_interval`` optionally executes a client request every so
        often while the service is live and safe (so the timeline carries an
        agreed log); ``recovery_interval`` optionally performs proactive
        recovery of all compromised replicas at that period.
        """
        timeline = ServiceTimeline(
            state=self.state(), peak_compromised=self.group.compromised_count()
        )
        events: List[Tuple[float, int, str, object]] = []
        for exploit in exploits:
            events.append((exploit.time, 0, "exploit", exploit))
        end_time = horizon
        if end_time is None:
            end_time = max((e.time for e in exploits), default=0.0)
        if request_interval is not None and request_interval > 0:
            t = request_interval
            while t <= end_time:
                events.append((t, 1, "request", None))
                t += request_interval
        if recovery_interval is not None and recovery_interval > 0:
            t = recovery_interval
            while t <= end_time:
                events.append((t, 2, "recovery", None))
                t += recovery_interval
        events.sort(key=lambda item: (item[0], item[1]))

        for time, _priority, kind, payload in events:
            if kind == "exploit":
                exploit: ExploitEvent = payload  # type: ignore[assignment]
                newly = self.group.apply_exploit(time, exploit.cve_id, exploit.affected_os)
                if newly:
                    timeline.compromised_events.append((time, exploit.cve_id, newly))
                    count = self.group.compromised_count()
                    if count > timeline.peak_compromised:
                        timeline.peak_compromised = count
                if (
                    self.group.safety_violated
                    and timeline.safety_violation_time is None
                ):
                    timeline.safety_violation_time = time
                if (
                    not self.can_make_progress()
                    and timeline.liveness_loss_time is None
                ):
                    timeline.liveness_loss_time = time
            elif kind == "recovery":
                self.group.proactive_recovery()
            elif kind == "request":
                if self.is_safe() and self.can_make_progress():
                    timeline.executed.append(self.execute_request(time))
        timeline.state = self.state()
        return timeline
