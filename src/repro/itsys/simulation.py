"""Monte-Carlo comparison of homogeneous vs diverse replica groups.

Ties the corpus, the attacker model and the BFT service model together: for a
set of candidate replica configurations, run many randomised exploit
campaigns and estimate the probability that the service's safety is violated
(more than ``f`` replicas compromised), the mean time to that violation and
the mean peak number of compromised replicas.

This turns the paper's qualitative argument -- "diversity reduces the chance
that one vulnerability takes out several replicas at once" -- into a number
that can be compared across configurations.

Interchangeable execution engines are provided, mirroring the analysis
engine split of :mod:`repro.analysis.engine`:

* ``"bitset"`` (default) -- the attacker's exploitable pool is compiled
  **once per simulation** (the naive path re-filters the whole corpus on
  every run), each exploit's victim set over the replica group is a
  precompiled integer bitmask (:class:`repro.analysis.engine.ReplicaIncidence`)
  and per-event damage is an AND-NOT + popcount, so a 500-run campaign runs
  at hardware speed;
* ``"packed"`` -- accepted so the packed analysis engine is selectable
  end-to-end (``repro sweep --engine packed``); replica-group victim masks
  already fit one machine word, so it shares the bitset event loop and is
  bit-for-bit identical to it by construction;
* ``"naive"`` -- the original per-run ``Attacker`` + ``BFTService`` object
  path, kept as the reference implementation for cross-checking.

All engines consume the per-run random streams identically (seed
``seed + 7919 * run_index``, one ``expovariate``/``weibullvariate`` plus one
``choice`` per exploit), so for a fixed seed they produce **bit-for-bit
identical** :class:`SimulationResult` values -- asserted by
``tests/itsys/test_simulation_equivalence.py`` and timed by
``benchmarks/bench_simulation.py``.

Because every run draws from its own ``random.Random(seed + 7919 *
run_index)`` stream, a campaign of ``runs`` runs can be split into disjoint
run ranges, executed anywhere (other processes, other machines) and merged
back without changing a single bit of the result.  That is the contract of
the partial-run API consumed by :mod:`repro.runner`:

* :meth:`CompromiseSimulation.run_range` executes runs ``[run_start,
  run_stop)`` and returns a :class:`RunRangeTallies`;
* :func:`merge_run_ranges` merges partial tallies **order-independently**
  (partials are sorted by ``run_start`` before concatenation, so any
  completion order of parallel workers yields the same merged value) and
  rejects gaps and overlaps;
* :func:`result_from_tallies` turns a complete ``[0, runs)`` tally into the
  same :class:`SimulationResult` that :meth:`run_configuration` builds --
  in fact ``run_configuration`` is implemented on top of these primitives,
  so the single-process and merged paths cannot drift apart.

Scenario knobs beyond the paper's Poisson attacker: a Weibull *aging*
inter-arrival process (``arrival="aging"``), a *smart* adversary that opens
the campaign with the single most damaging exploit
(:meth:`Attacker.best_single_exploit`), proactive-recovery interval sweeps
(:meth:`CompromiseSimulation.recovery_sweep`) and Wilson 95% confidence
intervals on every estimated probability.

Richer adversaries live in :mod:`repro.itsys.scenarios`: passing a
:class:`~repro.itsys.scenarios.ScenarioSpec` as the ``scenario`` campaign
keyword routes ``run_range`` through a scenario event loop built from a
pluggable arrival-model/adversary-policy pair compiled over the same
incidence bitmasks.  The scenario loop is engine-independent (all three
engine labels execute the identical code path, so bitset ≡ packed ≡ naive
by construction) and preserves the per-run seeding contract, so scenario
campaigns merge, cache and sweep exactly like classic ones.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.engine import ReplicaIncidence
from repro.classify.filters import ServerConfigurationFilter
from repro.core.enums import ServerConfiguration
from repro.core.exceptions import SimulationError
from repro.core.models import VulnerabilityEntry
from repro.itsys.attacker import Attacker, best_exploit_entry
from repro.itsys.bft import BFTService
from repro.itsys.replica import ReplicaGroup
from repro.itsys.scenarios import ScenarioSpec, build_scenario

#: Execution engines understood by :class:`CompromiseSimulation`.
ENGINES: Tuple[str, ...] = ("bitset", "naive", "packed")

#: Exploit inter-arrival processes understood by ``run_configuration``.
ARRIVALS: Tuple[str, ...] = ("poisson", "aging")

#: Two-sided z for the 95% Wilson score interval.
_WILSON_Z = 1.959963984540054


def wilson_interval(
    successes: int, trials: int, z: float = _WILSON_Z
) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Unlike the normal approximation it stays inside ``[0, 1]`` and behaves
    sensibly at 0 or ``trials`` successes, which is exactly the regime of
    safety-violation counts for well-chosen diverse groups.  The boundary
    cases are pinned exactly: 0 successes yields a lower bound of exactly
    ``0.0`` and ``trials`` successes an upper bound of exactly ``1.0``
    (the analytic Wilson bounds, which float rounding would otherwise
    perturb by ~1e-17 for some trial counts -- see
    ``tests/itsys/test_wilson_boundaries.py``).
    """
    if trials <= 0:
        raise SimulationError("a confidence interval needs at least one trial")
    if not 0 <= successes <= trials:
        raise SimulationError("successes must lie between 0 and trials")
    p = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    centre = (p + z2 / (2.0 * trials)) / denominator
    half_width = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))
        / denominator
    )
    lower = 0.0 if successes == 0 else max(0.0, centre - half_width)
    upper = 1.0 if successes == trials else min(1.0, centre + half_width)
    return (lower, upper)


@dataclass(frozen=True)
class SingleExploitAnalysis:
    """What one weaponised vulnerability can do to a replica group.

    This is the deterministic core of the paper's argument: a single attack
    defeats an intrusion-tolerant group only if the exploited vulnerability is
    *common* to more than ``f`` of its (distinct) operating systems.
    """

    name: str
    os_names: Tuple[str, ...]
    #: Number of exploitable vulnerabilities that affect at least one replica.
    relevant_exploits: int
    #: Number of exploitable vulnerabilities that alone compromise more than
    #: ``f`` replicas (i.e. defeat the group in a single attack).
    defeating_exploits: int
    #: Average number of replicas compromised by one relevant exploit.
    mean_replicas_per_exploit: float

    @property
    def single_attack_defeat_probability(self) -> float:
        """P[a single relevant exploit defeats the group]."""
        if self.relevant_exploits == 0:
            return 0.0
        return self.defeating_exploits / self.relevant_exploits


@dataclass(frozen=True)
class SimulationResult:
    """Aggregated outcome of a Monte-Carlo campaign for one configuration."""

    name: str
    os_names: Tuple[str, ...]
    runs: int
    safety_violation_probability: float
    #: Mean over runs of the *peak* simultaneously-compromised count -- the
    #: timeline maximum, so proactively recovered replicas still count
    #: towards the damage they did before rejuvenation.
    mean_compromised: float
    mean_time_to_violation: Optional[float]
    liveness_loss_probability: float
    #: Wilson 95% confidence intervals on the two estimated probabilities.
    safety_violation_ci: Tuple[float, float] = (0.0, 1.0)
    liveness_loss_ci: Tuple[float, float] = (0.0, 1.0)

    def summary(self) -> str:
        """One-line human-readable summary."""
        mttv = (
            f"{self.mean_time_to_violation:.1f}"
            if self.mean_time_to_violation is not None
            else "n/a"
        )
        low, high = self.safety_violation_ci
        return (
            f"{self.name}: P[safety violated]={self.safety_violation_probability:.2f} "
            f"(95% CI {low:.2f}-{high:.2f}), "
            f"mean compromised={self.mean_compromised:.2f}, "
            f"mean time to violation={mttv}"
        )


@dataclass(frozen=True)
class RunRangeTallies:
    """Raw tallies of the runs ``[run_start, run_stop)`` of one campaign.

    This is the *mergeable* partial result of a Monte-Carlo campaign: run
    ``i`` draws only from ``random.Random(seed + 7919 * i)``, so disjoint
    ranges are statistically and bit-wise independent and a full campaign is
    exactly the concatenation of its ranges in run order.  Per-run sequences
    (``compromised_counts``, ``violation_times``) are stored in run order so
    that downstream means iterate the same floats in the same order as a
    single-process campaign.
    """

    run_start: int
    run_stop: int
    violations: int
    liveness_losses: int
    #: Peak simultaneously-compromised count of each run, in run order.
    compromised_counts: Tuple[int, ...]
    #: Safety-violation time of each violating run, in run order.
    violation_times: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not 0 <= self.run_start < self.run_stop:
            raise SimulationError(
                f"invalid run range [{self.run_start}, {self.run_stop})"
            )
        if len(self.compromised_counts) != self.runs:
            raise SimulationError(
                f"range [{self.run_start}, {self.run_stop}) carries "
                f"{len(self.compromised_counts)} per-run counts, expected {self.runs}"
            )
        if not 0 <= self.violations <= self.runs:
            raise SimulationError("violation count exceeds the range size")
        if len(self.violation_times) != self.violations:
            raise SimulationError("one violation time is required per violation")

    @property
    def runs(self) -> int:
        """Number of runs covered by the range."""
        return self.run_stop - self.run_start


def merge_run_ranges(partials: Sequence[RunRangeTallies]) -> RunRangeTallies:
    """Merge disjoint partial tallies into one contiguous range.

    Merging is **order-independent**: partials are sorted by ``run_start``
    before concatenation (the shared span discipline of
    :func:`repro.runner.spans.order_contiguous`, which the serving layer's
    query sharding reuses), so shuffled worker-completion orders produce
    the same merged tallies bit for bit (regression-tested by
    ``tests/runner/test_merge.py``).  Gaps, overlaps and duplicated ranges
    raise :class:`~repro.core.exceptions.SimulationError` instead of silently
    corrupting the statistics.
    """
    # Imported lazily: repro.runner imports this module at package-import
    # time, so a top-level import back into repro.runner would be cyclic.
    from repro.runner.spans import order_contiguous

    try:
        ordered = order_contiguous(
            partials, lambda tallies: (tallies.run_start, tallies.run_stop)
        )
    except ValueError as error:
        raise SimulationError(f"run ranges: {error}") from error
    compromised_counts: List[int] = []
    violation_times: List[float] = []
    violations = 0
    liveness_losses = 0
    for tallies in ordered:
        violations += tallies.violations
        liveness_losses += tallies.liveness_losses
        compromised_counts.extend(tallies.compromised_counts)
        violation_times.extend(tallies.violation_times)
    return RunRangeTallies(
        run_start=ordered[0].run_start,
        run_stop=ordered[-1].run_stop,
        violations=violations,
        liveness_losses=liveness_losses,
        compromised_counts=tuple(compromised_counts),
        violation_times=tuple(violation_times),
    )


def result_from_tallies(
    name: str, os_names: Sequence[str], tallies: RunRangeTallies
) -> SimulationResult:
    """Build the campaign :class:`SimulationResult` from complete tallies.

    ``tallies`` must cover a full campaign (``run_start == 0``); partial
    ranges must be merged first.  :meth:`CompromiseSimulation
    .run_configuration` routes through this function, so results assembled
    from merged parallel chunks are bit-for-bit identical to single-process
    campaigns.
    """
    if tallies.run_start != 0:
        raise SimulationError(
            f"a campaign result needs tallies starting at run 0, "
            f"got run {tallies.run_start}; merge the partial ranges first"
        )
    runs = tallies.runs
    return SimulationResult(
        name=name,
        os_names=tuple(os_names),
        runs=runs,
        safety_violation_probability=tallies.violations / runs,
        mean_compromised=statistics.fmean(tallies.compromised_counts),
        mean_time_to_violation=(
            statistics.fmean(tallies.violation_times)
            if tallies.violation_times
            else None
        ),
        liveness_loss_probability=tallies.liveness_losses / runs,
        safety_violation_ci=wilson_interval(tallies.violations, runs),
        liveness_loss_ci=wilson_interval(tallies.liveness_losses, runs),
    )


class CompromiseSimulation:
    """Monte-Carlo estimator of compromise probabilities for replica groups.

    ``engine`` selects the execution path (see the module docstring);
    ``catalogued=False`` skips OS-name normalisation so synthetic scaled
    catalogues (``generate_scaled_catalogue``) can be simulated.
    """

    def __init__(
        self,
        entries: Iterable[VulnerabilityEntry],
        configuration: ServerConfiguration = ServerConfiguration.ISOLATED_THIN,
        seed: int = 7,
        engine: str = "bitset",
        catalogued: bool = True,
    ) -> None:
        if engine not in ENGINES:
            raise SimulationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self._entries = list(entries)
        self._configuration = configuration
        self._seed = seed
        self._engine = engine
        self._catalogued = catalogued
        #: Config-filtered exploitable pool, compiled lazily *once* and shared
        #: by every configuration run on the bitset engine.
        self._pool: Optional[List[VulnerabilityEntry]] = None

    @property
    def engine(self) -> str:
        return self._engine

    @property
    def seed(self) -> int:
        """Base seed; run ``i`` draws from ``Random(seed + 7919 * i)``."""
        return self._seed

    def with_engine(self, engine: str) -> "CompromiseSimulation":
        """A simulation over the same corpus and seed on another engine."""
        if engine == self._engine:
            return self
        return CompromiseSimulation(
            self._entries,
            configuration=self._configuration,
            seed=self._seed,
            engine=engine,
            catalogued=self._catalogued,
        )

    # -- compiled state -------------------------------------------------------------

    def _compiled_pool(self) -> List[VulnerabilityEntry]:
        """The attacker's exploitable pool, filtered once per simulation."""
        if self._pool is None:
            admits = ServerConfigurationFilter(self._configuration).admits
            pool = [entry for entry in self._entries if admits(entry)]
            if not pool:
                # Same failure mode as constructing an Attacker over the corpus.
                raise SimulationError("the attacker has no exploitable vulnerabilities")
            self._pool = pool
        return self._pool

    def _group(self, os_names: Sequence[str], quorum_model: str) -> ReplicaGroup:
        return ReplicaGroup(
            list(os_names), quorum_model=quorum_model, catalogued=self._catalogued
        )

    # -- single configuration -------------------------------------------------------

    def run_configuration(
        self,
        name: str,
        os_names: Sequence[str],
        runs: int = 200,
        exploit_rate: float = 1.0,
        horizon: float = 30.0,
        quorum_model: str = "3f+1",
        targeted: bool = True,
        recovery_interval: Optional[float] = None,
        arrival: str = "poisson",
        shape: float = 1.0,
        smart: bool = False,
        scenario: Optional[ScenarioSpec] = None,
    ) -> SimulationResult:
        """Estimate compromise statistics for one replica configuration.

        ``os_names`` lists the OS of each replica (repetition allowed, which
        models a homogeneous deployment).  ``targeted`` restricts the attacker
        to vulnerabilities affecting at least one of the group's OSes -- the
        pessimistic assumption that the adversary knows the deployment.
        ``arrival`` picks the inter-arrival process (``"poisson"`` or the
        Weibull ``"aging"`` process with the given ``shape``); ``smart``
        additionally opens every campaign with the single most damaging
        exploit against the group (a 0-day in hand before the clock starts).
        ``scenario`` selects a richer adversary from
        :mod:`repro.itsys.scenarios` (``None`` keeps the classic single
        adversary); the base arrival process composes with the scenario.
        """
        if runs <= 0:
            raise SimulationError("the number of runs must be positive")
        tallies = self.run_range(
            os_names,
            0,
            runs,
            exploit_rate=exploit_rate,
            horizon=horizon,
            quorum_model=quorum_model,
            targeted=targeted,
            recovery_interval=recovery_interval,
            arrival=arrival,
            shape=shape,
            smart=smart,
            scenario=scenario,
        )
        return result_from_tallies(name, os_names, tallies)

    def run_range(
        self,
        os_names: Sequence[str],
        run_start: int,
        run_stop: int,
        exploit_rate: float = 1.0,
        horizon: float = 30.0,
        quorum_model: str = "3f+1",
        targeted: bool = True,
        recovery_interval: Optional[float] = None,
        arrival: str = "poisson",
        shape: float = 1.0,
        smart: bool = False,
        scenario: Optional[ScenarioSpec] = None,
    ) -> RunRangeTallies:
        """Execute runs ``[run_start, run_stop)`` of a campaign.

        Run ``i`` is seeded ``seed + 7919 * i`` regardless of which range it
        belongs to, so splitting a campaign into disjoint ranges (for a
        process pool, say), executing them in any order and merging with
        :func:`merge_run_ranges` reproduces the single-range campaign bit
        for bit.  Campaign keyword arguments mean the same as in
        :meth:`run_configuration`.
        """
        if not 0 <= run_start < run_stop:
            raise SimulationError(
                f"invalid run range [{run_start}, {run_stop}); "
                "run_start must satisfy 0 <= run_start < run_stop"
            )
        if arrival not in ARRIVALS:
            raise SimulationError(
                f"unknown arrival process {arrival!r}; expected one of {ARRIVALS}"
            )
        if scenario is not None:
            # One shared loop for all engine labels: scenario campaigns are
            # engine-independent by construction (asserted by the
            # equivalence property suite all the same).
            tallies = self._campaign_tallies_scenario(
                os_names, run_start, run_stop, exploit_rate, horizon,
                quorum_model, targeted, recovery_interval, arrival, shape,
                smart, scenario,
            )
        elif self._engine == "naive":
            tallies = self._campaign_tallies_naive(
                os_names, run_start, run_stop, exploit_rate, horizon,
                quorum_model, targeted, recovery_interval, arrival, shape, smart,
            )
        else:
            tallies = self._campaign_tallies_bitset(
                os_names, run_start, run_stop, exploit_rate, horizon,
                quorum_model, targeted, recovery_interval, arrival, shape, smart,
            )
        violations, liveness_losses, compromised_counts, violation_times = tallies
        return RunRangeTallies(
            run_start=run_start,
            run_stop=run_stop,
            violations=violations,
            liveness_losses=liveness_losses,
            compromised_counts=tuple(compromised_counts),
            violation_times=tuple(violation_times),
        )

    # -- execution engines ----------------------------------------------------------

    def _campaign_tallies_naive(
        self,
        os_names: Sequence[str],
        run_start: int,
        run_stop: int,
        exploit_rate: float,
        horizon: float,
        quorum_model: str,
        targeted: bool,
        recovery_interval: Optional[float],
        arrival: str,
        shape: float,
        smart: bool,
    ) -> Tuple[int, int, List[int], List[float]]:
        """Reference path: one ``Attacker`` + ``BFTService`` pair per run."""
        violations = 0
        liveness_losses = 0
        compromised_counts: List[int] = []
        violation_times: List[float] = []
        for run_index in range(run_start, run_stop):
            attacker = Attacker(
                self._entries,
                configuration=self._configuration,
                seed=self._seed + 7919 * run_index,
            )
            group = self._group(os_names, quorum_model)
            service = BFTService(group)
            targeted_os = list(set(os_names)) if targeted else None
            if arrival == "poisson":
                exploits = attacker.poisson_campaign(
                    rate=exploit_rate, horizon=horizon, targeted_os=targeted_os
                )
            else:
                exploits = attacker.aging_campaign(
                    rate=exploit_rate, shape=shape, horizon=horizon,
                    targeted_os=targeted_os,
                )
            if smart:
                opening = attacker.opening_exploit(os_names)
                if opening is not None:
                    exploits = [opening, *exploits]
            timeline = service.run_campaign(
                exploits, recovery_interval=recovery_interval, horizon=horizon
            )
            compromised_counts.append(timeline.peak_compromised)
            if timeline.safety_violation_time is not None:
                violations += 1
                violation_times.append(timeline.safety_violation_time)
            if timeline.liveness_loss_time is not None:
                liveness_losses += 1
        return violations, liveness_losses, compromised_counts, violation_times

    def _campaign_tallies_bitset(
        self,
        os_names: Sequence[str],
        run_start: int,
        run_stop: int,
        exploit_rate: float,
        horizon: float,
        quorum_model: str,
        targeted: bool,
        recovery_interval: Optional[float],
        arrival: str,
        shape: float,
        smart: bool,
    ) -> Tuple[int, int, List[int], List[float]]:
        """Fast path: compile once, then one AND-NOT + popcount per event.

        Consumes the per-run random streams exactly like the naive path (one
        ``expovariate``/``weibullvariate`` then one ``choice`` per exploit,
        drawn from ``random.Random(seed + 7919 * run_index)``), so results
        are bit-for-bit identical for a fixed seed.
        """
        # Mirror the parameter validation the naive path gets from Attacker.
        if exploit_rate <= 0:
            raise SimulationError("the exploit arrival rate must be positive")
        if arrival == "aging" and shape <= 0:
            raise SimulationError("the inter-arrival shape must be positive")
        if horizon <= 0:
            raise SimulationError("the campaign horizon must be positive")
        pool = self._compiled_pool()
        group = self._group(os_names, quorum_model)
        n, f, quorum = group.n, group.f, group.quorum_size
        if targeted:
            targets = set(os_names)
            targeted_pool = [
                entry for entry in pool if entry.affected_os & targets
            ]
        else:
            targeted_pool = pool
        incidence = ReplicaIncidence(targeted_pool, group.os_names)
        victim_masks = incidence.victim_masks
        opening_mask: Optional[int] = None
        if smart:
            entry, _coverage = best_exploit_entry(pool, os_names)
            if entry is not None:
                opening_mask = incidence.victim_mask_for(entry.affected_os)
        recovery_times: List[float] = []
        if recovery_interval is not None and recovery_interval > 0:
            t = recovery_interval
            while t <= horizon:  # same float accumulation as BFTService
                recovery_times.append(t)
                t += recovery_interval
        n_recoveries = len(recovery_times)
        pool_indices = range(len(targeted_pool))
        aging = arrival == "aging"
        scale = 1.0 / exploit_rate

        violations = 0
        liveness_losses = 0
        compromised_counts: List[int] = []
        violation_times: List[float] = []
        for run_index in range(run_start, run_stop):
            rng = random.Random(self._seed + 7919 * run_index)
            compromised = 0
            peak = 0
            violation_time: Optional[float] = None
            liveness_time: Optional[float] = None
            if opening_mask:
                # The smart opening shot lands at time 0.0, before any
                # recovery (those start strictly after 0).
                compromised = opening_mask
                count = compromised.bit_count()
                peak = count
                if count > f:
                    violation_time = 0.0
                if n - count < quorum:
                    liveness_time = 0.0
            if targeted_pool:
                draw_gap = rng.weibullvariate if aging else rng.expovariate
                choice = rng.choice
                recovery_index = 0
                time = 0.0
                while True:
                    time += draw_gap(scale, shape) if aging else draw_gap(exploit_rate)
                    if time > horizon:
                        break
                    entry_index = choice(pool_indices)
                    # Recoveries strictly before this exploit fire first
                    # (exploit < recovery at equal timestamps, as in
                    # BFTService.run_campaign's priority sort).
                    while (
                        recovery_index < n_recoveries
                        and recovery_times[recovery_index] < time
                    ):
                        compromised = 0
                        recovery_index += 1
                    newly = victim_masks[entry_index] & ~compromised
                    if newly:
                        compromised |= newly
                        count = compromised.bit_count()
                        if count > peak:
                            peak = count
                        if violation_time is None and count > f:
                            violation_time = time
                        if liveness_time is None and n - count < quorum:
                            liveness_time = time
            compromised_counts.append(peak)
            if violation_time is not None:
                violations += 1
                violation_times.append(violation_time)
            if liveness_time is not None:
                liveness_losses += 1
        return violations, liveness_losses, compromised_counts, violation_times

    def _campaign_tallies_scenario(
        self,
        os_names: Sequence[str],
        run_start: int,
        run_stop: int,
        exploit_rate: float,
        horizon: float,
        quorum_model: str,
        targeted: bool,
        recovery_interval: Optional[float],
        arrival: str,
        shape: float,
        smart: bool,
        scenario: ScenarioSpec,
    ) -> Tuple[int, int, List[int], List[float]]:
        """Scenario path: arrival model × adversary policy over the bitmasks.

        Shares the compiled pool, incidence masks, recovery schedule and
        smart-opening logic with the bitset loop; *when* events happen and
        *what* each event does are delegated to the pair compiled by
        :func:`repro.itsys.scenarios.build_scenario`.  All draws come from
        the per-run ``Random(seed + 7919 * run_index)`` stream, so scenario
        ranges merge bit for bit like classic ones.
        """
        if exploit_rate <= 0:
            raise SimulationError("the exploit arrival rate must be positive")
        if arrival == "aging" and shape <= 0:
            raise SimulationError("the inter-arrival shape must be positive")
        if horizon <= 0:
            raise SimulationError("the campaign horizon must be positive")
        pool = self._compiled_pool()
        group = self._group(os_names, quorum_model)
        n, f, quorum = group.n, group.f, group.quorum_size
        if targeted:
            targets = set(os_names)
            targeted_pool = [
                entry for entry in pool if entry.affected_os & targets
            ]
        else:
            targeted_pool = pool
        incidence = ReplicaIncidence(targeted_pool, group.os_names)
        victim_masks = incidence.victim_masks
        opening_mask: Optional[int] = None
        if smart:
            entry, _coverage = best_exploit_entry(pool, os_names)
            if entry is not None:
                opening_mask = incidence.victim_mask_for(entry.affected_os)
        recovery_times: List[float] = []
        if recovery_interval is not None and recovery_interval > 0:
            t = recovery_interval
            while t <= horizon:  # same float accumulation as BFTService
                recovery_times.append(t)
                t += recovery_interval
        n_recoveries = len(recovery_times)
        aging = arrival == "aging"
        scale = 1.0 / exploit_rate
        if aging:
            def draw_gap(rng, _scale=scale, _shape=shape):
                return rng.weibullvariate(_scale, _shape)
        else:
            def draw_gap(rng, _rate=exploit_rate):
                return rng.expovariate(_rate)
        arrivals, policy = build_scenario(scenario, draw_gap, victim_masks, n)

        violations = 0
        liveness_losses = 0
        compromised_counts: List[int] = []
        violation_times: List[float] = []
        for run_index in range(run_start, run_stop):
            rng = random.Random(self._seed + 7919 * run_index)
            policy.reset(rng)
            compromised = 0
            peak = 0
            violation_time: Optional[float] = None
            liveness_time: Optional[float] = None
            if opening_mask:
                # The smart opening shot lands at time 0.0, before any
                # recovery (those start strictly after 0).
                compromised = opening_mask
                count = compromised.bit_count()
                peak = count
                if count > f:
                    violation_time = 0.0
                if n - count < quorum:
                    liveness_time = 0.0
            if targeted_pool:
                recovery_index = 0
                for time in arrivals.events(rng, horizon):
                    entry_index = policy.choose(rng, time, compromised)
                    # Recoveries strictly before this exploit fire first
                    # (exploit < recovery at equal timestamps, matching the
                    # bitset loop and BFTService.run_campaign).
                    while (
                        recovery_index < n_recoveries
                        and recovery_times[recovery_index] < time
                    ):
                        compromised = 0
                        recovery_index += 1
                    landed = False
                    if entry_index is not None:
                        newly = victim_masks[entry_index] & ~compromised
                        if newly:
                            compromised |= newly
                            landed = True
                    if landed:
                        compromised = policy.propagate(rng, compromised)
                        count = compromised.bit_count()
                        if count > peak:
                            peak = count
                        if violation_time is None and count > f:
                            violation_time = time
                        if liveness_time is None and n - count < quorum:
                            liveness_time = time
            compromised_counts.append(peak)
            if violation_time is not None:
                violations += 1
                violation_times.append(violation_time)
            if liveness_time is not None:
                liveness_losses += 1
        return violations, liveness_losses, compromised_counts, violation_times

    # -- single-exploit (0-day) analysis -----------------------------------------------

    def single_exploit_analysis(
        self,
        name: str,
        os_names: Sequence[str],
        quorum_model: str = "3f+1",
    ) -> SingleExploitAnalysis:
        """Damage a single exploit can do to the group, over the whole pool.

        Walks every exploitable vulnerability in the (filtered) corpus and
        counts how many replicas of the group it would compromise on its own.
        A homogeneous group is defeated by *any* vulnerability of its OS; a
        diverse group only by a vulnerability common to more than ``f`` of its
        operating systems.
        """
        group = self._group(os_names, quorum_model)
        relevant = 0
        defeating = 0
        total_victims = 0
        if self._engine == "naive":
            attacker = Attacker(
                self._entries, configuration=self._configuration, seed=self._seed
            )
            for entry in attacker.targeted_pool(None):
                victims = sum(
                    1 for replica in group.replicas
                    if replica.os_name in entry.affected_os
                )
                if victims == 0:
                    continue
                relevant += 1
                total_victims += victims
                if victims > group.f:
                    defeating += 1
        else:
            incidence = ReplicaIncidence(self._compiled_pool(), group.os_names)
            f = group.f
            for mask in incidence.victim_masks:
                if not mask:
                    continue
                victims = mask.bit_count()
                relevant += 1
                total_victims += victims
                if victims > f:
                    defeating += 1
        return SingleExploitAnalysis(
            name=name,
            os_names=tuple(os_names),
            relevant_exploits=relevant,
            defeating_exploits=defeating,
            mean_replicas_per_exploit=(total_victims / relevant) if relevant else 0.0,
        )

    # -- comparisons -----------------------------------------------------------------

    def compare(
        self,
        configurations: Mapping[str, Sequence[str]],
        **campaign: object,
    ) -> List[SimulationResult]:
        """Run the same campaign parameters over several configurations.

        Every keyword argument (``runs``, ``exploit_rate``, ``horizon``,
        ``quorum_model``, ``targeted``, ``recovery_interval``, ``arrival``,
        ``shape``, ``smart``) is forwarded verbatim to
        :meth:`run_configuration`, so compared configurations always run
        exactly what the caller requested.
        """
        return [
            self.run_configuration(name, os_names, **campaign)  # type: ignore[arg-type]
            for name, os_names in configurations.items()
        ]

    def homogeneous_vs_diverse(
        self,
        homogeneous_os: str,
        diverse_os: Sequence[str],
        **campaign: object,
    ) -> Tuple[SimulationResult, SimulationResult]:
        """The paper's base comparison: 4 identical replicas vs a diverse set.

        Both configurations run with identical campaign parameters -- all
        keyword arguments are forwarded to :meth:`run_configuration`.
        """
        n = len(diverse_os)
        homogeneous = self.run_configuration(
            f"homogeneous-{homogeneous_os}",
            [homogeneous_os] * n,
            **campaign,  # type: ignore[arg-type]
        )
        diverse = self.run_configuration(
            "diverse-" + "+".join(diverse_os),
            diverse_os,
            **campaign,  # type: ignore[arg-type]
        )
        return homogeneous, diverse

    def diversity_gain(
        self,
        homogeneous_os: str,
        diverse_os: Sequence[str],
        **campaign: object,
    ) -> Optional[float]:
        """Relative reduction in safety-violation probability from diversity.

        Return contract: ``1.0`` means diversity eliminated all violations
        observed for the homogeneous deployment, ``0.0`` means no improvement,
        negative values mean the diverse group fared worse, and ``None``
        means the homogeneous baseline itself had **no** violations, so the
        ratio is undefined -- deliberately distinct from ``0.0``, which would
        misreport a both-survived campaign as "diversity did not help".
        """
        homogeneous, diverse = self.homogeneous_vs_diverse(
            homogeneous_os, diverse_os, **campaign
        )
        if homogeneous.safety_violation_probability == 0:
            return None
        return 1.0 - (
            diverse.safety_violation_probability
            / homogeneous.safety_violation_probability
        )

    def recovery_sweep(
        self,
        name: str,
        os_names: Sequence[str],
        intervals: Sequence[Optional[float]],
        **campaign: object,
    ) -> Dict[Optional[float], SimulationResult]:
        """Run one configuration under several proactive-recovery intervals.

        ``intervals`` may include ``None`` (no recovery).  Returns one result
        per interval, keyed by the interval, with the result name suffixed by
        it -- the standard way to quantify how much rejuvenation frequency
        buys on top of diversity.
        """
        if "recovery_interval" in campaign:
            raise SimulationError(
                "pass recovery intervals via the sweep, not as a campaign kwarg"
            )
        results: Dict[Optional[float], SimulationResult] = {}
        for interval in intervals:
            label = (
                f"{name}@recovery={interval:g}"
                if interval is not None
                else f"{name}@no-recovery"
            )
            results[interval] = self.run_configuration(
                label, os_names, recovery_interval=interval, **campaign  # type: ignore[arg-type]
            )
        return results
