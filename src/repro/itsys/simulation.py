"""Monte-Carlo comparison of homogeneous vs diverse replica groups.

Ties the corpus, the attacker model and the BFT service model together: for a
set of candidate replica configurations, run many randomised exploit
campaigns and estimate the probability that the service's safety is violated
(more than ``f`` replicas compromised), the mean time to that violation and
the mean number of compromised replicas.

This turns the paper's qualitative argument -- "diversity reduces the chance
that one vulnerability takes out several replicas at once" -- into a number
that can be compared across configurations.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.enums import ServerConfiguration
from repro.core.exceptions import SimulationError
from repro.core.models import VulnerabilityEntry
from repro.itsys.attacker import Attacker
from repro.itsys.bft import BFTService, ServiceState
from repro.itsys.replica import ReplicaGroup


@dataclass(frozen=True)
class SingleExploitAnalysis:
    """What one weaponised vulnerability can do to a replica group.

    This is the deterministic core of the paper's argument: a single attack
    defeats an intrusion-tolerant group only if the exploited vulnerability is
    *common* to more than ``f`` of its (distinct) operating systems.
    """

    name: str
    os_names: Tuple[str, ...]
    #: Number of exploitable vulnerabilities that affect at least one replica.
    relevant_exploits: int
    #: Number of exploitable vulnerabilities that alone compromise more than
    #: ``f`` replicas (i.e. defeat the group in a single attack).
    defeating_exploits: int
    #: Average number of replicas compromised by one relevant exploit.
    mean_replicas_per_exploit: float

    @property
    def single_attack_defeat_probability(self) -> float:
        """P[a single relevant exploit defeats the group]."""
        if self.relevant_exploits == 0:
            return 0.0
        return self.defeating_exploits / self.relevant_exploits


@dataclass(frozen=True)
class SimulationResult:
    """Aggregated outcome of a Monte-Carlo campaign for one configuration."""

    name: str
    os_names: Tuple[str, ...]
    runs: int
    safety_violation_probability: float
    mean_compromised: float
    mean_time_to_violation: Optional[float]
    liveness_loss_probability: float

    def summary(self) -> str:
        """One-line human-readable summary."""
        mttv = (
            f"{self.mean_time_to_violation:.1f}"
            if self.mean_time_to_violation is not None
            else "n/a"
        )
        return (
            f"{self.name}: P[safety violated]={self.safety_violation_probability:.2f}, "
            f"mean compromised={self.mean_compromised:.2f}, "
            f"mean time to violation={mttv}"
        )


class CompromiseSimulation:
    """Monte-Carlo estimator of compromise probabilities for replica groups."""

    def __init__(
        self,
        entries: Iterable[VulnerabilityEntry],
        configuration: ServerConfiguration = ServerConfiguration.ISOLATED_THIN,
        seed: int = 7,
    ) -> None:
        self._entries = list(entries)
        self._configuration = configuration
        self._seed = seed

    # -- single configuration -------------------------------------------------------

    def run_configuration(
        self,
        name: str,
        os_names: Sequence[str],
        runs: int = 200,
        exploit_rate: float = 1.0,
        horizon: float = 30.0,
        quorum_model: str = "3f+1",
        targeted: bool = True,
        recovery_interval: Optional[float] = None,
    ) -> SimulationResult:
        """Estimate compromise statistics for one replica configuration.

        ``os_names`` lists the OS of each replica (repetition allowed, which
        models a homogeneous deployment).  ``targeted`` restricts the attacker
        to vulnerabilities affecting at least one of the group's OSes -- the
        pessimistic assumption that the adversary knows the deployment.
        """
        if runs <= 0:
            raise SimulationError("the number of runs must be positive")
        violations = 0
        liveness_losses = 0
        compromised_counts: List[int] = []
        violation_times: List[float] = []
        for run_index in range(runs):
            attacker = Attacker(
                self._entries,
                configuration=self._configuration,
                seed=self._seed + 7919 * run_index,
            )
            group = ReplicaGroup(list(os_names), quorum_model=quorum_model)
            service = BFTService(group)
            exploits = attacker.poisson_campaign(
                rate=exploit_rate,
                horizon=horizon,
                targeted_os=list(set(os_names)) if targeted else None,
            )
            timeline = service.run_campaign(
                exploits, recovery_interval=recovery_interval, horizon=horizon
            )
            compromised_counts.append(group.compromised_count())
            if timeline.safety_violation_time is not None:
                violations += 1
                violation_times.append(timeline.safety_violation_time)
            if timeline.liveness_loss_time is not None:
                liveness_losses += 1
        return SimulationResult(
            name=name,
            os_names=tuple(os_names),
            runs=runs,
            safety_violation_probability=violations / runs,
            mean_compromised=statistics.fmean(compromised_counts),
            mean_time_to_violation=(
                statistics.fmean(violation_times) if violation_times else None
            ),
            liveness_loss_probability=liveness_losses / runs,
        )

    # -- single-exploit (0-day) analysis -----------------------------------------------

    def single_exploit_analysis(
        self,
        name: str,
        os_names: Sequence[str],
        quorum_model: str = "3f+1",
    ) -> SingleExploitAnalysis:
        """Damage a single exploit can do to the group, over the whole pool.

        Walks every exploitable vulnerability in the (filtered) corpus and
        counts how many replicas of the group it would compromise on its own.
        A homogeneous group is defeated by *any* vulnerability of its OS; a
        diverse group only by a vulnerability common to more than ``f`` of its
        operating systems.
        """
        group = ReplicaGroup(list(os_names), quorum_model=quorum_model)
        attacker = Attacker(self._entries, configuration=self._configuration, seed=self._seed)
        relevant = 0
        defeating = 0
        total_victims = 0
        for entry in attacker._pool:  # noqa: SLF001 - deliberate internal reuse
            victims = sum(1 for replica in group.replicas if replica.os_name in entry.affected_os)
            if victims == 0:
                continue
            relevant += 1
            total_victims += victims
            if victims > group.f:
                defeating += 1
        return SingleExploitAnalysis(
            name=name,
            os_names=tuple(os_names),
            relevant_exploits=relevant,
            defeating_exploits=defeating,
            mean_replicas_per_exploit=(total_victims / relevant) if relevant else 0.0,
        )

    # -- comparisons -----------------------------------------------------------------

    def compare(
        self,
        configurations: Mapping[str, Sequence[str]],
        runs: int = 200,
        exploit_rate: float = 1.0,
        horizon: float = 30.0,
        quorum_model: str = "3f+1",
        recovery_interval: Optional[float] = None,
    ) -> List[SimulationResult]:
        """Run the same campaign parameters over several configurations."""
        results = [
            self.run_configuration(
                name,
                os_names,
                runs=runs,
                exploit_rate=exploit_rate,
                horizon=horizon,
                quorum_model=quorum_model,
                recovery_interval=recovery_interval,
            )
            for name, os_names in configurations.items()
        ]
        return results

    def homogeneous_vs_diverse(
        self,
        homogeneous_os: str,
        diverse_os: Sequence[str],
        runs: int = 200,
        exploit_rate: float = 1.0,
        horizon: float = 30.0,
    ) -> Tuple[SimulationResult, SimulationResult]:
        """The paper's base comparison: 4 identical replicas vs a diverse set."""
        n = len(diverse_os)
        homogeneous = self.run_configuration(
            f"homogeneous-{homogeneous_os}",
            [homogeneous_os] * n,
            runs=runs,
            exploit_rate=exploit_rate,
            horizon=horizon,
        )
        diverse = self.run_configuration(
            "diverse-" + "+".join(diverse_os),
            diverse_os,
            runs=runs,
            exploit_rate=exploit_rate,
            horizon=horizon,
        )
        return homogeneous, diverse

    def diversity_gain(
        self,
        homogeneous_os: str,
        diverse_os: Sequence[str],
        runs: int = 200,
        exploit_rate: float = 1.0,
        horizon: float = 30.0,
    ) -> float:
        """Relative reduction in safety-violation probability from diversity.

        1.0 means diversity eliminated all violations observed for the
        homogeneous deployment; 0.0 means no improvement.
        """
        homogeneous, diverse = self.homogeneous_vs_diverse(
            homogeneous_os, diverse_os, runs=runs, exploit_rate=exploit_rate, horizon=horizon
        )
        if homogeneous.safety_violation_probability == 0:
            return 0.0
        return 1.0 - (
            diverse.safety_violation_probability
            / homogeneous.safety_violation_probability
        )
