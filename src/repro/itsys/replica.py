"""Replicas and replica groups for the intrusion-tolerance model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.constants import get_os
from repro.core.exceptions import SimulationError


@dataclass
class Replica:
    """One server replica running a particular operating system."""

    replica_id: int
    os_name: str
    compromised: bool = False
    compromised_at: Optional[float] = None
    compromised_by: Optional[str] = None
    patched: FrozenSet[str] = frozenset()
    #: When False, the OS name is kept verbatim instead of being resolved
    #: against the built-in catalogue -- required for synthetic scaled
    #: catalogues (e.g. ``generate_scaled_catalogue``) whose release names
    #: are not real operating systems.
    catalogued: bool = True

    def __post_init__(self) -> None:
        # Normalise the OS name against the catalogue early, so that typos
        # fail fast rather than silently producing an "invulnerable" replica.
        if self.catalogued:
            self.os_name = get_os(self.os_name).name

    def is_vulnerable_to(self, cve_id: str, affected_os: Iterable[str]) -> bool:
        """Whether an exploit for the given vulnerability can compromise this replica."""
        if self.compromised:
            return False
        if cve_id in self.patched:
            return False
        return self.os_name in set(affected_os)

    def compromise(self, time: float, cve_id: str) -> None:
        if not self.compromised:
            self.compromised = True
            self.compromised_at = time
            self.compromised_by = cve_id

    def recover(self) -> None:
        """Proactive recovery: the replica is restored to a clean state."""
        self.compromised = False
        self.compromised_at = None
        self.compromised_by = None

    def patch(self, cve_id: str) -> None:
        """Apply a patch so the vulnerability can no longer be exploited here."""
        self.patched = self.patched | {cve_id}


class ReplicaGroup:
    """A group of replicas forming one intrusion-tolerant service.

    ``quorum_model`` is ``"3f+1"`` (standard BFT SMR) or ``"2f+1"`` (hybrid
    protocols with trusted components); it determines how many compromised
    replicas the group tolerates.
    """

    def __init__(
        self,
        os_names: Sequence[str],
        quorum_model: str = "3f+1",
        catalogued: bool = True,
    ) -> None:
        if not os_names:
            raise SimulationError("a replica group needs at least one replica")
        if quorum_model not in ("3f+1", "2f+1"):
            raise SimulationError(f"unknown quorum model {quorum_model!r}")
        self.quorum_model = quorum_model
        self.replicas: List[Replica] = [
            Replica(replica_id=index, os_name=name, catalogued=catalogued)
            for index, name in enumerate(os_names)
        ]

    # -- sizing -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.replicas)

    @property
    def n(self) -> int:
        return len(self.replicas)

    @property
    def f(self) -> int:
        """Number of compromised replicas the group is designed to tolerate."""
        if self.quorum_model == "3f+1":
            return max(0, (self.n - 1) // 3)
        return max(0, (self.n - 1) // 2)

    @property
    def quorum_size(self) -> int:
        """Replicas needed to make progress (2f+1 of 3f+1, or f+1 of 2f+1)."""
        if self.quorum_model == "3f+1":
            return 2 * self.f + 1
        return self.f + 1

    # -- state ------------------------------------------------------------------

    @property
    def os_names(self) -> Tuple[str, ...]:
        return tuple(replica.os_name for replica in self.replicas)

    @property
    def distinct_os(self) -> Set[str]:
        return set(self.os_names)

    @property
    def is_diverse(self) -> bool:
        """Whether every replica runs a different operating system."""
        return len(self.distinct_os) == self.n

    def compromised_replicas(self) -> List[Replica]:
        return [replica for replica in self.replicas if replica.compromised]

    def compromised_count(self) -> int:
        return len(self.compromised_replicas())

    @property
    def safety_violated(self) -> bool:
        """True once more than ``f`` replicas are compromised."""
        return self.compromised_count() > self.f

    def correct_replicas(self) -> List[Replica]:
        return [replica for replica in self.replicas if not replica.compromised]

    def reset(self) -> None:
        for replica in self.replicas:
            replica.recover()
            replica.patched = frozenset()

    # -- attack surface ------------------------------------------------------------

    def vulnerable_replicas(self, cve_id: str, affected_os: Iterable[str]) -> List[Replica]:
        """Replicas that a single exploit for ``cve_id`` could compromise."""
        affected = set(affected_os)
        return [
            replica
            for replica in self.replicas
            if replica.is_vulnerable_to(cve_id, affected)
        ]

    def apply_exploit(self, time: float, cve_id: str, affected_os: Iterable[str]) -> int:
        """Compromise every replica vulnerable to the exploit; return how many."""
        victims = self.vulnerable_replicas(cve_id, affected_os)
        for replica in victims:
            replica.compromise(time, cve_id)
        return len(victims)

    def proactive_recovery(self) -> int:
        """Recover all compromised replicas (e.g. periodic rejuvenation)."""
        recovered = 0
        for replica in self.compromised_replicas():
            replica.recover()
            recovered += 1
        return recovered

    # -- constructors -----------------------------------------------------------------

    @classmethod
    def homogeneous(cls, os_name: str, n: int, quorum_model: str = "3f+1") -> "ReplicaGroup":
        """A non-diverse group: ``n`` replicas of the same OS."""
        return cls([os_name] * n, quorum_model=quorum_model)

    @classmethod
    def diverse(cls, os_names: Sequence[str], quorum_model: str = "3f+1") -> "ReplicaGroup":
        """A diverse group with one replica per listed OS."""
        if len(set(os_names)) != len(os_names):
            raise SimulationError("diverse groups must not repeat operating systems")
        return cls(list(os_names), quorum_model=quorum_model)
