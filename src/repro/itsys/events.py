"""A minimal discrete-event simulation engine.

Events carry a timestamp, a kind and an arbitrary payload; the queue delivers
them in timestamp order (ties broken by insertion order, so runs are
deterministic for a fixed seed).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled simulation event."""

    time: float
    sequence: int = field(compare=True)
    kind: str = field(compare=False, default="")
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Priority queue of events ordered by time (then insertion order)."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time (time of the last popped event)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event; times must not precede the current time."""
        if time < self._now:
            raise ValueError(f"cannot schedule event in the past ({time} < {self._now})")
        event = Event(time=time, sequence=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the next event, advancing the clock."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def peek(self) -> Optional[Event]:
        return self._heap[0] if self._heap else None

    def drain(self) -> Iterator[Event]:
        """Iterate over all remaining events in order."""
        while self._heap:
            yield self.pop()

    def run(
        self,
        handler: Callable[[Event], None],
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Dispatch events to ``handler`` until the horizon or the queue empties.

        Returns the number of events processed.  ``handler`` may schedule
        further events.
        """
        processed = 0
        while self._heap:
            upcoming = self._heap[0]
            if until is not None and upcoming.time > until:
                break
            if max_events is not None and processed >= max_events:
                break
            handler(self.pop())
            processed += 1
        if until is not None and (not self._heap or self._heap[0].time > until):
            self._now = max(self._now, until)
        return processed
