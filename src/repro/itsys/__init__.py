"""Intrusion-tolerant system modelling.

The paper motivates OS diversity with intrusion-tolerant (BFT) replicated
systems: as long as at most ``f`` of the ``3f+1`` (or ``2f+1``) replicas are
compromised, the service stays correct.  This subpackage makes that argument
executable:

* :mod:`repro.itsys.events` -- a small discrete-event simulation engine;
* :mod:`repro.itsys.replica` -- replicas, replica groups and quorum sizing;
* :mod:`repro.itsys.attacker` -- an attacker model that weaponises
  vulnerabilities from a corpus with exploit-arrival processes;
* :mod:`repro.itsys.bft` -- a quorum-based state-machine-replication service
  model that reports when safety/liveness are lost;
* :mod:`repro.itsys.simulation` -- Monte-Carlo campaigns comparing
  homogeneous and diverse replica groups;
* :mod:`repro.itsys.scenarios` -- composable adversary scenarios (multi-
  adversary campaigns, patch races, epidemic propagation, adaptive
  re-targeting) plugged into the simulation's event loop.
"""

from repro.itsys.attacker import Attacker, ExploitEvent, best_exploit_entry
from repro.itsys.bft import BFTService, ServiceState
from repro.itsys.events import Event, EventQueue
from repro.itsys.replica import Replica, ReplicaGroup
from repro.itsys.scenarios import (
    CLOSURE_MODELS,
    SCENARIOS,
    ArrivalModel,
    AdversaryPolicy,
    ScenarioSpec,
    build_scenario,
    parse_scenario,
)
from repro.itsys.simulation import (
    ARRIVALS,
    ENGINES,
    CompromiseSimulation,
    RunRangeTallies,
    SimulationResult,
    SingleExploitAnalysis,
    merge_run_ranges,
    result_from_tallies,
    wilson_interval,
)

__all__ = [
    "Event",
    "EventQueue",
    "Replica",
    "ReplicaGroup",
    "Attacker",
    "ExploitEvent",
    "best_exploit_entry",
    "BFTService",
    "ServiceState",
    "ARRIVALS",
    "ENGINES",
    "CompromiseSimulation",
    "RunRangeTallies",
    "SimulationResult",
    "SingleExploitAnalysis",
    "merge_run_ranges",
    "result_from_tallies",
    "wilson_interval",
    "CLOSURE_MODELS",
    "SCENARIOS",
    "ArrivalModel",
    "AdversaryPolicy",
    "ScenarioSpec",
    "build_scenario",
    "parse_scenario",
]
