"""Command-line interface for the reproduction.

Usage (after ``pip install -e .`` or from the repository root)::

    python -m repro tables                 # print every reproduced table
    python -m repro table --id "Table III" # print one table / figure
    python -m repro experiments            # paper-vs-measured for all experiments
    python -m repro select --faults 1      # pick replica sets (Section IV-C)
    python -m repro simulate --runs 100    # homogeneous vs diverse simulation
    python -m repro sweep --workers 4      # parallel cached parameter-grid sweep
    python -m repro serve --port 8142      # long-lived diversity-query API server
    python -m repro export --output out/   # write all tables/figures as text+CSV
    python -m repro feeds --output feeds/  # write the corpus as NVD-style XML feeds
    python -m repro ingest --db data.db    # ingest into a persistent snapshot store
    python -m repro ingest --db data.db --delta mod.xml   # apply a modified feed
    python -m repro snapshot list --db data.db            # inspect the ledger

All commands operate on the calibrated synthetic corpus by default; pass
``--feeds DIR`` to run the analyses on a directory of NVD XML feeds instead
(e.g. the real ones, in an online environment), or ``--db PATH`` (optionally
with ``--snapshot ID``) to run them on a snapshot state of a persistent
ingested database.  ``--engine bitset|naive|packed`` selects the
shared-vulnerability engine (the precompiled bitset incidence index by
default; the naive set re-intersection for cross-checking; the numpy
packed-word index for large catalogues).  Worked examples for every command
live in ``docs/cli.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.dataset import ENGINES, VulnerabilityDataset
from repro.analysis.periods import PeriodAnalysis
from repro.analysis.selection import ReplicaSetSelector, replicas_needed
from repro.core.constants import FIGURE3_CONFIGURATIONS, TABLE5_OSES, get_os
from repro.db.ingest import IngestPipeline
from repro.itsys.simulation import ENGINES as SIMULATION_ENGINES
from repro.itsys.simulation import CompromiseSimulation
from repro.reports.experiments import EXPERIMENTS
from repro.reports.export import to_csv
from repro.reports.figures import figure2, figure3
from repro.reports.tables import (
    ksets_summary,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.synthetic.corpus import build_corpus

_TABLES = {
    "Table I": table1,
    "Table II": table2,
    "Table III": table3,
    "Table IV": table4,
    "Table V": table5,
    "Table VI": table6,
    "Section IV-B": ksets_summary,
}
_FIGURES = {"Figure 2": figure2, "Figure 3": figure3}


def _resolve_snapshot(store, spec: Optional[str]):
    """Resolve a ``--snapshot`` selector (id or digest prefix) to a record."""
    from repro.core.exceptions import DatabaseError

    if spec is None:
        head = store.head()
        if head is None:
            raise SystemExit("the database has no snapshots; run `repro ingest` first")
        return head
    try:
        return store.resolve(spec)
    except DatabaseError as error:
        # Clean CLI failure instead of a DatabaseError traceback.
        raise SystemExit(str(error)) from error


def _load_dataset(args: argparse.Namespace) -> VulnerabilityDataset:
    """Dataset from ``--db`` (snapshot-pinned) or ``--feeds``, else synthetic."""
    engine = getattr(args, "engine", "bitset")
    if getattr(args, "db", None):
        from repro.db.database import VulnerabilityDatabase
        from repro.snapshots.store import SnapshotStore

        if not Path(args.db).exists():
            # Opening would create (and schema-initialise) a stray file.
            raise SystemExit(
                f"database {args.db} does not exist; run "
                f"`repro --db {args.db} ingest` first"
            )
        database = VulnerabilityDatabase(args.db)
        try:
            store = SnapshotStore(database)
            record = _resolve_snapshot(store, getattr(args, "snapshot", None))
            return store.dataset_at(record.snapshot_id, engine=engine)
        finally:
            database.close()
    if getattr(args, "feeds", None):
        feed_dir = Path(args.feeds)
        paths = sorted(feed_dir.glob("*.xml"))
        if not paths:
            raise SystemExit(f"no .xml feeds found in {feed_dir}")
        pipeline = IngestPipeline()
        pipeline.ingest_xml_feeds(paths)
        entries = pipeline.database.load_entries()
        pipeline.database.close()
        return VulnerabilityDataset(entries, engine=engine)
    corpus = build_corpus(seed=args.seed)
    return VulnerabilityDataset(corpus.entries, engine=engine)


# ---------------------------------------------------------------------------
# sub-commands
# ---------------------------------------------------------------------------


def cmd_tables(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    for builder in _TABLES.values():
        print(builder(dataset).text)
        print()
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    if args.id in _TABLES:
        print(_TABLES[args.id](dataset).text)
        return 0
    if args.id in _FIGURES:
        print(_FIGURES[args.id](dataset).text)
        return 0
    known = ", ".join(sorted(list(_TABLES) + list(_FIGURES)))
    print(f"unknown table/figure {args.id!r}; known: {known}", file=sys.stderr)
    return 2


def cmd_experiments(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    if getattr(args, "markdown", False):
        from repro.reports.summary import generate_markdown_report

        print(generate_markdown_report(dataset))
        return 0
    for experiment in EXPERIMENTS.values():
        result = experiment.run(dataset)
        print(f"== {result.experiment_id}: {result.description}")
        for key, measured in result.measured.items():
            paper = result.paper_values.get(key, "n/a")
            print(f"   {key}: measured={measured}  paper={paper}")
        print()
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    periods = PeriodAnalysis(dataset)
    selector = ReplicaSetSelector(
        pair_matrix=periods.history_pair_matrix(), candidates=TABLE5_OSES
    )
    n = replicas_needed(args.faults, args.quorum)
    print(f"selecting {n} operating systems to tolerate f={args.faults} ({args.quorum}), "
          f"using the {HISTORY_LABEL} data:")
    for result in selector.exhaustive(n, top=args.top):
        evaluation = periods.evaluate_configuration("candidate", result.os_names)
        print(f"  {', '.join(result.os_names):60s} history={result.pairwise_shared:3d} "
              f"observed={evaluation.observed_count:2d}")
    return 0


HISTORY_LABEL = "1994-2005 history"


def _interval_list(spec: str) -> List[float]:
    """argparse type for --recovery-sweep: a comma-separated float list."""
    try:
        values = [float(token) for token in spec.split(",") if token.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid interval list {spec!r}")
    if not values:
        raise argparse.ArgumentTypeError("expected at least one interval")
    return values


def _ledger_lifetimes(args: argparse.Namespace) -> tuple:
    """Observed closure lifetimes from the --db snapshot ledger."""
    from repro.core.exceptions import SimulationError

    if not getattr(args, "db", None) or not Path(args.db).exists():
        raise SimulationError(
            "closure=empirical without inline lifetimes needs --db "
            "(the snapshot ledger supplies the observed lifetimes)"
        )
    from repro.db.database import VulnerabilityDatabase
    from repro.snapshots.history import closure_lifetimes
    from repro.snapshots.store import SnapshotStore

    database = VulnerabilityDatabase(args.db)
    try:
        lifetimes = closure_lifetimes(SnapshotStore(database))
    finally:
        database.close()
    if not lifetimes:
        raise SimulationError(
            "the snapshot ledger records no closure lifetimes yet; "
            "ingest more snapshots or pass lifetimes=... explicitly"
        )
    return lifetimes


def _resolve_scenario(token: str, args: argparse.Namespace):
    """One scenario axis entry: ``none`` or a ``family:key=value,...`` spec.

    An empirical patch-race spec without inline lifetimes resamples the
    ``--db`` snapshot ledger (:func:`repro.snapshots.closure_lifetimes`).
    Raises :class:`~repro.core.exceptions.SimulationError` on bad input.
    """
    from repro.itsys.scenarios import parse_scenario

    token = token.replace(" ", "")
    if token.lower() == "none":
        return None
    if "closure=empirical" in token and "lifetimes=" not in token:
        lifetimes = _ledger_lifetimes(args)
        token += ",lifetimes=" + ";".join(repr(value) for value in lifetimes)
    return parse_scenario(token)


def _simulate_configurations(args: argparse.Namespace) -> dict:
    """Replica configurations selected by --homogeneous / --config / --os."""
    configurations: dict = {}
    if args.homogeneous:
        configurations[f"homogeneous (4 x {args.homogeneous})"] = (args.homogeneous,) * 4
    for name in args.config or []:
        configurations[name] = FIGURE3_CONFIGURATIONS[name]
    for spec in args.os or []:
        os_names = tuple(name.strip() for name in spec.split(",") if name.strip())
        configurations["custom (" + "+".join(os_names) + ")"] = os_names
    if not configurations:
        configurations = {
            "homogeneous (4 x Debian)": ("Debian",) * 4,
            "Set1": FIGURE3_CONFIGURATIONS["Set1"],
            "Set4": FIGURE3_CONFIGURATIONS["Set4"],
        }
    return configurations


def _reject_bad_simulation_inputs(args: argparse.Namespace,
                                  configurations: dict) -> Optional[int]:
    """Shared --engine / configuration validation for simulate and sweep.

    Returns an exit code to fail with, or ``None`` when the inputs are fine.
    """
    if args.engine not in SIMULATION_ENGINES:
        print(f"the simulator supports --engine {'|'.join(SIMULATION_ENGINES)}, "
              f"not {args.engine!r}", file=sys.stderr)
        return 2
    for name, os_names in configurations.items():
        if not os_names:
            print(f"configuration {name!r} has no replicas", file=sys.stderr)
            return 2
        for os_name in os_names:
            try:
                get_os(os_name)
            except KeyError:
                print(f"unknown operating system {os_name!r} in configuration "
                      f"{name!r}", file=sys.stderr)
                return 2
    return None


def cmd_simulate(args: argparse.Namespace) -> int:
    if args.recovery_sweep and args.recovery_interval is not None:
        print("--recovery-sweep and --recovery-interval are mutually exclusive",
              file=sys.stderr)
        return 2
    configurations = _simulate_configurations(args)
    failure = _reject_bad_simulation_inputs(args, configurations)
    if failure is not None:
        return failure
    from repro.core.exceptions import SimulationError

    try:
        scenario = (
            _resolve_scenario(args.scenario, args) if args.scenario else None
        )
    except SimulationError as error:
        print(f"invalid scenario: {error}", file=sys.stderr)
        return 2
    dataset = _load_dataset(args)
    simulation = CompromiseSimulation(
        [entry for entry in dataset if entry.is_valid],
        seed=args.seed,
        engine=args.engine,
    )
    campaign = dict(
        runs=args.runs,
        exploit_rate=args.rate,
        horizon=args.horizon,
        quorum_model=args.quorum_model,
        targeted=not args.untargeted,
        arrival=args.arrival,
        shape=args.shape,
        smart=args.smart,
        scenario=scenario,
    )
    analyses = {
        name: simulation.single_exploit_analysis(name, os_names, quorum_model=args.quorum_model)
        for name, os_names in configurations.items()
    }
    sweep_intervals: Optional[List[Optional[float]]] = None
    if args.recovery_sweep:
        sweep_intervals = [None] + list(args.recovery_sweep)
        results = [
            result
            for name, os_names in configurations.items()
            for result in simulation.recovery_sweep(
                name, os_names, sweep_intervals, **campaign
            ).values()
        ]
    else:
        campaign["recovery_interval"] = args.recovery_interval
        results = simulation.compare(configurations, **campaign)

    if args.json:
        import dataclasses
        import json

        payload = {
            "engine": simulation.engine,
            "parameters": {**campaign,
                           "scenario": scenario.params() if scenario else None,
                           "seed": args.seed,
                           "recovery_sweep": sweep_intervals},
            "configurations": {name: list(os_names) for name, os_names in configurations.items()},
            "single_exploit": [dataclasses.asdict(a) for a in analyses.values()],
            "campaigns": [dataclasses.asdict(result) for result in results],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print("single-exploit (0-day) defeat probability:")
    for name, analysis in analyses.items():
        print(f"  {name:28s} {analysis.single_attack_defeat_probability:5.2f} "
              f"(mean replicas hit {analysis.mean_replicas_per_exploit:.2f})")
    scenario_note = f", scenario {scenario.label}" if scenario else ""
    print(f"\nMonte-Carlo campaigns ({args.runs} runs, rate {args.rate}, "
          f"horizon {args.horizon}, {args.arrival} arrivals, "
          f"engine {simulation.engine}{scenario_note}):")
    for result in results:
        print(f"  {result.summary()}")
    return 0


def _comma_list(spec: str) -> List[str]:
    """argparse type for comma-separated token lists (e.g. --quorum-models)."""
    tokens = [token.strip() for token in spec.split(",") if token.strip()]
    if not tokens:
        raise argparse.ArgumentTypeError("expected at least one value")
    return tokens


def _recovery_list(spec: str) -> List[Optional[float]]:
    """argparse type for --recovery-intervals: floats and the token 'none'."""
    values: List[Optional[float]] = []
    for token in _comma_list(spec):
        if token.lower() == "none":
            values.append(None)
            continue
        try:
            values.append(float(token))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid recovery interval {token!r} (use a number or 'none')"
            )
    return values


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.exceptions import SimulationError
    from repro.runner import ArrivalSpec, ExperimentGrid, GridRunner, ResultCache

    if args.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    configurations = _simulate_configurations(args)
    failure = _reject_bad_simulation_inputs(args, configurations)
    if failure is not None:
        return failure
    try:
        arrivals = tuple(
            ArrivalSpec(process, args.shape if process == "aging" else 1.0)
            for process in args.arrivals
        )
        scenarios = tuple(
            _resolve_scenario(token, args)
            for token in (args.scenario or ["none"])
        )
        grid = ExperimentGrid(
            configurations=configurations,
            quorum_models=tuple(args.quorum_models),
            recovery_intervals=tuple(args.recovery_intervals),
            arrivals=arrivals,
            adversaries=tuple(args.adversaries),
            scenarios=scenarios,
            runs=args.runs,
            exploit_rate=args.rate,
            horizon=args.horizon,
        )
    except SimulationError as error:
        print(f"invalid grid: {error}", file=sys.stderr)
        return 2
    dataset = _load_dataset(args)
    # One registry shared by the result cache and the runner, so --stats
    # reports cache warm/cold and chunk timings from a single source.
    from repro.obs import MetricsRegistry

    metrics = MetricsRegistry()
    cache = (
        None if args.no_cache
        else ResultCache(Path(args.cache_dir), metrics=metrics)
    )
    runner = GridRunner.for_dataset(
        dataset,
        seed=args.seed,
        engine=args.engine,
        workers=args.workers,
        cache=cache,
        metrics=metrics,
    )
    report = runner.run(grid)
    if args.stats:
        print(runner.metrics.render(), end="", file=sys.stderr)

    # Dataset provenance: every exported result is traceable to the exact
    # dataset state it was computed from (and the snapshot, when pinned).
    dataset_meta = {
        "digest": dataset.digest(),
        "source": "db" if args.db else ("feeds" if args.feeds else "synthetic"),
        "snapshot_id": dataset.snapshot.snapshot_id if dataset.snapshot else None,
        "snapshot_digest": dataset.snapshot.digest if dataset.snapshot else None,
    }
    if args.csv:
        to_csv(report.CSV_HEADERS, report.csv_rows(), Path(args.csv))
        print(f"wrote {len(report.cells)} cells to {args.csv} "
              f"(dataset digest {dataset_meta['digest'][:12]})", file=sys.stderr)
    if args.json:
        import json

        payload = report.to_json_payload()
        payload["dataset"] = dataset_meta
        print(json.dumps(payload, indent=2, sort_keys=True))
        print(f"swept {len(report.cells)} cells "
              f"({report.cached_cells} cached) in {report.elapsed_seconds:.2f}s "
              f"with {args.workers} worker(s)", file=sys.stderr)
        return 0
    print(f"sweep: {len(report.cells)} cells, {args.runs} runs each, "
          f"engine {report.engine}, {args.workers} worker(s)")
    for cell_result in report.cells:
        marker = " [cached]" if cell_result.cached else ""
        print(f"  {cell_result.result.summary()}{marker}")
    print(f"done in {report.elapsed_seconds:.2f}s "
          f"({report.cached_cells}/{len(report.cells)} cells from cache)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        ApiError,
        ServiceConfig,
        ServiceConfigError,
        serve,
        serve_cluster,
    )

    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            cache_size=args.cache_size,
            engine=args.engine,
            seed=args.seed,
            db=args.db,
            snapshot=args.snapshot,
            feeds=args.feeds,
            request_threads=args.request_threads,
            catalogue=args.catalogue,
            front_router=args.front_router,
            metrics=args.metrics,
            trace_log=args.trace_log,
            trace_buffer=args.trace_buffer,
        )
        if config.workers > 1:
            return serve_cluster(config)
        return serve(config)
    except (ServiceConfigError, ApiError) as error:
        # Startup failures (bad knobs, missing database, empty feed
        # directory) exit cleanly like every other command, instead of
        # leaking a traceback.
        print(str(error), file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive ^C fallback
        return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    from repro.db.database import VulnerabilityDatabase
    from repro.snapshots.delta import DeltaIngestPipeline
    from repro.snapshots.store import SnapshotStore

    if not args.db:
        print("ingest requires --db PATH (the persistent snapshot store)",
              file=sys.stderr)
        return 2
    database = VulnerabilityDatabase(args.db)
    try:
        pipeline = IngestPipeline(database=database)
        store = SnapshotStore(database)
        if args.delta:
            delta = DeltaIngestPipeline(pipeline, store)
            report = delta.apply_feed(
                args.delta,
                source=args.source or str(args.delta),
                commit=not args.no_snapshot,
            )
            print(report.summary())
            if report.snapshot is not None:
                print(report.snapshot.summary())
            return 0
        if database.entry_count() > 0:
            print(f"{args.db} already holds entries; apply changes with "
                  "`repro ingest --delta FEED` instead of a full re-ingest",
                  file=sys.stderr)
            return 2
        if args.feeds:
            feed_dir = Path(args.feeds)
            paths = sorted(feed_dir.glob("*.xml"))
            if not paths:
                print(f"no .xml feeds found in {feed_dir}", file=sys.stderr)
                return 2
            ingest_report = pipeline.ingest_xml_feeds(paths)
            source = args.source or str(feed_dir)
        else:
            corpus = build_corpus(seed=args.seed)
            ingest_report = pipeline.ingest_raw(corpus.to_raw_feed_entries())
            source = args.source or f"synthetic corpus (seed {args.seed})"
        print(f"ingested {ingest_report.ingested_entries} entries "
              f"({ingest_report.valid_entries} valid, "
              f"{ingest_report.excluded_entries} excluded, "
              f"{ingest_report.skipped_no_os} out of scope)")
        if not args.no_snapshot:
            print(store.commit(source=source).summary())
        return 0
    finally:
        database.close()


def cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.db.database import VulnerabilityDatabase
    from repro.snapshots.export import write_snapshot_feeds
    from repro.snapshots.store import SnapshotStore

    if not args.db:
        print("snapshot commands require --db PATH", file=sys.stderr)
        return 2
    if not Path(args.db).exists():
        print(f"database {args.db} does not exist; run `repro ingest --db "
              f"{args.db}` first", file=sys.stderr)
        return 2
    database = VulnerabilityDatabase(args.db)
    try:
        store = SnapshotStore(database)
        if args.action == "list":
            records = store.list()
            if not records:
                print("no snapshots yet")
                return 0
            for record in records:
                print(record.summary())
            return 0
        if args.action == "diff":
            to_record = _resolve_snapshot(store, args.to)
            if args.__dict__["from"] is not None:
                from_record = _resolve_snapshot(store, args.__dict__["from"])
            elif to_record.parent_digest is not None:
                from_record = store.by_digest(to_record.parent_digest)
            else:
                print(f"snapshot #{to_record.snapshot_id} has no parent; "
                      "pass --from explicitly", file=sys.stderr)
                return 2
            diff = store.diff(from_record.snapshot_id, to_record.snapshot_id)
            print(diff.summary())
            if args.cves and not diff.is_empty:
                for cve_id in diff.added:
                    print(f"  + {cve_id}")
                for cve_id in diff.modified:
                    print(f"  ~ {cve_id}")
                for cve_id in diff.removed:
                    print(f"  - {cve_id}")
            return 0
        if args.action == "checkout":
            record = _resolve_snapshot(store, args.id)
            if not args.output:
                print("snapshot checkout requires --output DIR", file=sys.stderr)
                return 2
            paths = write_snapshot_feeds(store, record.snapshot_id, args.output)
            print(f"checked out snapshot #{record.snapshot_id} "
                  f"({record.short_digest}) as {len(paths)} feeds in {args.output}")
            return 0
        if args.action == "drift":
            from repro.reports.drift import snapshot_drift

            report = snapshot_drift(store)
            if not report.rows:
                print("no snapshots yet")
                return 0
            print(report.text)
            return 0
        print(f"unknown snapshot action {args.action!r}", file=sys.stderr)
        return 2
    finally:
        database.close()


def cmd_export(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    output = Path(args.output)
    output.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name, builder in _TABLES.items():
        report = builder(dataset)
        slug = name.lower().replace(" ", "_").replace("-", "_")
        text_path = output / f"{slug}.txt"
        text_path.write_text(report.text + "\n", encoding="utf-8")
        to_csv(report.headers, report.rows, output / f"{slug}.csv")
        written.extend([text_path, output / f"{slug}.csv"])
    for name, builder in _FIGURES.items():
        figure = builder(dataset)
        slug = name.lower().replace(" ", "_")
        path = output / f"{slug}.txt"
        path.write_text(figure.text + "\n", encoding="utf-8")
        written.append(path)
    print(f"wrote {len(written)} files to {output}")
    return 0


def cmd_feeds(args: argparse.Namespace) -> int:
    corpus = build_corpus(seed=args.seed)
    paths = corpus.write_xml_feeds(args.output)
    corpus.write_json_feed(Path(args.output) / "nvdcve-all.json")
    print(f"wrote {len(paths)} XML feeds and 1 JSON feed to {args.output}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the repro.devtools static-analysis suite (see docs/devtools.md)."""
    from repro.devtools.cli import execute_lint

    return execute_lint(args)


def cmd_devtools(args: argparse.Namespace) -> int:
    """The devtools umbrella: ``repro devtools check`` runs every gate."""
    from repro.devtools.cli import execute_check

    return execute_check(args)


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'OS Diversity for Intrusion Tolerance' (DSN 2011)",
        epilog=(
            "Full command documentation with worked examples: docs/cli.md.\n"
            "All commands accept the global --seed, --feeds and --engine options."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    from repro import __version__

    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}",
                        help="print the package version and exit")
    parser.add_argument("--seed", type=int, default=20110627,
                        help="seed for the synthetic corpus (default: 20110627)")
    parser.add_argument("--feeds", type=str, default=None,
                        help="directory of NVD XML feeds to analyse instead of the synthetic corpus")
    parser.add_argument("--db", type=str, default=None,
                        help="path of a persistent ingested database (snapshot store); "
                             "analyses run on its head snapshot unless --snapshot is given")
    parser.add_argument("--snapshot", type=str, default=None, metavar="ID",
                        help="with --db: pin analyses to this snapshot "
                             "(a ledger id or a digest prefix) instead of the head")
    parser.add_argument("--engine", choices=ENGINES, default="bitset",
                        help="shared-vulnerability engine: the precompiled bitset "
                             "incidence index (default), the naive set "
                             "re-intersection kept for cross-checking, or the "
                             "numpy packed-word index for large catalogues")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, help_text: str, epilog: str) -> argparse.ArgumentParser:
        return sub.add_parser(
            name,
            help=help_text,
            epilog=epilog,
            formatter_class=argparse.RawDescriptionHelpFormatter,
        )

    tables_parser = add_command(
        "tables",
        "print every reproduced table",
        "example:\n"
        "  python -m repro tables                # Tables I-VI + Section IV-B\n"
        "  python -m repro --engine naive tables # same numbers, reference engine",
    )
    tables_parser.set_defaults(func=cmd_tables)

    table_parser = add_command(
        "table",
        "print one table or figure",
        "examples:\n"
        '  python -m repro table --id "Table III"   # pairwise shared counts\n'
        '  python -m repro table --id "Figure 3"    # replica-set evaluation',
    )
    table_parser.add_argument("--id", required=True, help='e.g. "Table III" or "Figure 3"')
    table_parser.set_defaults(func=cmd_table)

    experiments_parser = add_command(
        "experiments",
        "paper-vs-measured for every experiment",
        "examples:\n"
        "  python -m repro experiments                  # plain text comparison\n"
        "  python -m repro experiments --markdown > report.md",
    )
    experiments_parser.add_argument(
        "--markdown", action="store_true", help="emit a Markdown reproduction report"
    )
    experiments_parser.set_defaults(func=cmd_experiments)

    select_parser = add_command(
        "select",
        "choose diverse replica sets (Section IV-C)",
        "examples:\n"
        "  python -m repro select --faults 1 --top 5      # 4 replicas (3f+1)\n"
        "  python -m repro select --faults 2 --quorum 2f+1  # 5 replicas",
    )
    select_parser.add_argument("--faults", type=int, default=1, help="faults to tolerate (f)")
    select_parser.add_argument("--quorum", choices=("3f+1", "2f+1"), default="3f+1")
    select_parser.add_argument("--top", type=int, default=5, help="number of groups to print")
    select_parser.set_defaults(func=cmd_select)

    simulate_parser = add_command(
        "simulate",
        "homogeneous vs diverse attack simulation",
        "examples:\n"
        "  python -m repro simulate --runs 500 --rate 2.0 --horizon 5.0\n"
        "  python -m repro simulate --config Set1 --homogeneous Windows2003 \\\n"
        "      --recovery-interval 2.0 --json\n"
        "  python -m repro simulate --os Debian,OpenBSD,Solaris,NetBSD \\\n"
        "      --arrival aging --shape 1.8 --smart\n"
        "  python -m repro --engine naive simulate --runs 100   # reference engine",
    )
    simulate_parser.add_argument("--runs", type=int, default=100)
    simulate_parser.add_argument("--rate", type=float, default=1.0)
    simulate_parser.add_argument("--horizon", type=float, default=5.0)
    simulate_parser.add_argument(
        "--homogeneous", metavar="OS", default=None,
        help="add a homogeneous configuration of 4 replicas of this OS",
    )
    simulate_parser.add_argument(
        "--config", action="append", choices=sorted(FIGURE3_CONFIGURATIONS),
        help="add one of the paper's Figure 3 configurations (repeatable)",
    )
    simulate_parser.add_argument(
        "--os", action="append", metavar="OS[,OS...]",
        help="add a custom configuration from a comma-separated OS list",
    )
    simulate_parser.add_argument(
        "--quorum-model", choices=("3f+1", "2f+1"), default="3f+1",
        help="BFT quorum model sizing f (default: 3f+1)",
    )
    simulate_parser.add_argument(
        "--recovery-interval", type=float, default=None,
        help="proactive recovery (rejuvenation) period in simulated time units",
    )
    simulate_parser.add_argument(
        "--recovery-sweep", metavar="T1,T2,...", type=_interval_list, default=None,
        help="sweep the recovery interval over these values (plus no recovery); "
             "mutually exclusive with --recovery-interval",
    )
    simulate_parser.add_argument(
        "--arrival", choices=("poisson", "aging"), default="poisson",
        help="exploit inter-arrival process (aging = Weibull with --shape)",
    )
    simulate_parser.add_argument(
        "--shape", type=float, default=1.0,
        help="Weibull shape for --arrival aging (>1 maturing attacker, <1 burst)",
    )
    simulate_parser.add_argument(
        "--smart", action="store_true",
        help="open every campaign with the single most damaging exploit",
    )
    simulate_parser.add_argument(
        "--untargeted", action="store_true",
        help="draw exploits from the whole pool, not just the group's OSes",
    )
    simulate_parser.add_argument(
        "--scenario", metavar="SPEC", default=None,
        help="adversary scenario family:key=value,... "
             "(campaign | patch-race | epidemic | adaptive), e.g. "
             "campaign:adversaries=3 or patch-race:closure=empirical; "
             "empirical closure without inline lifetimes reads the --db "
             "snapshot ledger",
    )
    simulate_parser.add_argument(
        "--json", action="store_true", help="emit results as JSON instead of text"
    )
    simulate_parser.set_defaults(func=cmd_simulate)

    sweep_parser = add_command(
        "sweep",
        "parallel parameter-grid sweep with result caching",
        "examples:\n"
        "  python -m repro sweep --runs 200 --workers 4\n"
        "  python -m repro sweep --config Set1 --homogeneous Debian \\\n"
        "      --quorum-models 3f+1,2f+1 --recovery-intervals none,2.0 \\\n"
        "      --arrivals poisson,aging --workers 4          # 16-cell grid\n"
        "  python -m repro sweep --runs 20 --workers 2 --json > sweep.json\n"
        "  python -m repro sweep --csv sweep.csv --no-cache\n"
        "\n"
        "Results are bit-for-bit identical for --workers 1 and --workers N;\n"
        "repeated sweeps are served from the content-addressed cache.",
    )
    sweep_parser.add_argument("--runs", type=int, default=100,
                              help="Monte-Carlo runs per grid cell")
    sweep_parser.add_argument("--rate", type=float, default=1.0)
    sweep_parser.add_argument("--horizon", type=float, default=5.0)
    sweep_parser.add_argument(
        "--homogeneous", metavar="OS", default=None,
        help="add a homogeneous configuration of 4 replicas of this OS",
    )
    sweep_parser.add_argument(
        "--config", action="append", choices=sorted(FIGURE3_CONFIGURATIONS),
        help="add one of the paper's Figure 3 configurations (repeatable)",
    )
    sweep_parser.add_argument(
        "--os", action="append", metavar="OS[,OS...]",
        help="add a custom configuration from a comma-separated OS list",
    )
    sweep_parser.add_argument(
        "--quorum-models", type=_comma_list, default=["3f+1"],
        metavar="M1,M2", help="quorum-model axis (subset of: 3f+1,2f+1)",
    )
    sweep_parser.add_argument(
        "--recovery-intervals", type=_recovery_list, default=[None],
        metavar="T1,T2,none",
        help="recovery-interval axis; 'none' disables proactive recovery",
    )
    sweep_parser.add_argument(
        "--arrivals", type=_comma_list, default=["poisson"],
        metavar="A1,A2", help="arrival-process axis (subset of: poisson,aging)",
    )
    sweep_parser.add_argument(
        "--shape", type=float, default=1.0,
        help="Weibull shape applied to 'aging' arrivals on the axis",
    )
    sweep_parser.add_argument(
        "--adversaries", type=_comma_list, default=["standard"],
        metavar="A1,A2",
        help="adversary axis (subset of: standard,smart,untargeted)",
    )
    sweep_parser.add_argument(
        "--scenario", action="append", metavar="SPEC", default=None,
        help="scenario axis entry (repeatable): 'none' for the classic "
             "adversary, or family:key=value,... as in simulate --scenario",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1,
        help="processes to fan grid cells out to (1 = run inline)",
    )
    sweep_parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR", ".repro-cache"),
        help="directory of the content-addressed result cache "
             "(default: $REPRO_CACHE_DIR, else .repro-cache)",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache entirely",
    )
    sweep_parser.add_argument(
        "--json", action="store_true",
        help="emit the deterministic sweep payload as JSON on stdout",
    )
    sweep_parser.add_argument(
        "--csv", metavar="PATH", default=None,
        help="additionally write one CSV row per grid cell to PATH",
    )
    sweep_parser.add_argument(
        "--stats", action="store_true",
        help="print the sweep's metrics registry (cache warm/cold, per-"
             "chunk timings) as Prometheus text on stderr after the run",
    )
    sweep_parser.set_defaults(func=cmd_sweep)

    serve_parser = add_command(
        "serve",
        "long-lived diversity-query API server (asyncio, JSON endpoints)",
        "examples:\n"
        "  python -m repro serve --port 8142             # synthetic corpus\n"
        "  python -m repro --db data.db serve --workers 4\n"
        "  python -m repro --db data.db --snapshot 2 serve   # pin a snapshot\n"
        "\n"
        "Each dataset state compiles once (keyed by its content digest) and\n"
        "every query is answered from memory; responses carry scoped-digest\n"
        "ETags (If-None-Match revalidation -> 304), simulations run as\n"
        "background jobs (POST /v1/simulations -> 202 + job id), and\n"
        "SIGTERM drains gracefully.  Endpoint reference: docs/service.md.",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8142,
        help="TCP port to bind; 0 picks a free port (default: 8142)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=1,
        help="serving processes; N>1 shards matrix queries across an "
        "N-worker cluster behind one port (also sizes each worker's "
        "simulation-job pool; default: 1)",
    )
    serve_parser.add_argument(
        "--cache-size", type=int, default=256,
        help="LRU response-cache entries per worker (default: 256)",
    )
    serve_parser.add_argument(
        "--request-threads", type=int, default=8,
        help="HTTP dispatch threads per worker (default: 8)",
    )
    serve_parser.add_argument(
        "--catalogue", default=None, metavar="SPEC",
        help="serve a generated catalogue instead of the calibrated corpus "
        "(scaled:FxR, e.g. scaled:10x10 = 100 OS releases; deterministic "
        "per --seed)",
    )
    serve_parser.add_argument(
        "--front-router", action="store_true",
        help="route the public port through a stdlib TCP proxy instead of "
        "SO_REUSEPORT (the automatic fallback where the option is missing)",
    )
    serve_parser.add_argument(
        "--metrics", action=argparse.BooleanOptionalAction, default=True,
        help="expose GET /metrics (Prometheus text, cluster-aggregated) "
        "and GET /v1/traces on the public port (default: enabled)",
    )
    serve_parser.add_argument(
        "--trace-log", action="store_true",
        help="log every finished request trace as one JSON line on stderr",
    )
    serve_parser.add_argument(
        "--trace-buffer", type=int, default=256,
        help="finished traces retained per worker for GET /v1/traces "
        "(default: 256)",
    )
    serve_parser.set_defaults(func=cmd_serve)

    export_parser = add_command(
        "export",
        "write all tables/figures as text and CSV",
        "example:\n"
        "  python -m repro export --output out/   # one .txt + .csv per table",
    )
    export_parser.add_argument("--output", required=True)
    export_parser.set_defaults(func=cmd_export)

    ingest_parser = add_command(
        "ingest",
        "ingest feeds into a persistent snapshot store (full or delta)",
        "examples:\n"
        "  python -m repro --db data.db ingest                  # synthetic corpus\n"
        "  python -m repro --db data.db --feeds feeds/ ingest   # a feed directory\n"
        "  python -m repro --db data.db ingest --delta modified.xml\n"
        "  python -m repro --db data.db ingest --delta modified.xml --source nvd\n"
        "\n"
        "A full ingest populates an empty database and commits snapshot #1;\n"
        "--delta applies an NVD-style modified feed (changed entries plus\n"
        "** REJECT ** tombstones) incrementally and commits one new snapshot.\n"
        "Re-applying an already-applied delta changes nothing (same digest).",
    )
    ingest_parser.add_argument(
        "--delta", metavar="FEED", default=None,
        help="apply this modified feed (.xml or .json) as an incremental delta",
    )
    ingest_parser.add_argument(
        "--source", default=None,
        help="feed-provenance label recorded in the snapshot ledger",
    )
    ingest_parser.add_argument(
        "--no-snapshot", action="store_true",
        help="mutate the database without committing a snapshot",
    )
    ingest_parser.set_defaults(func=cmd_ingest)

    snapshot_parser = add_command(
        "snapshot",
        "inspect the snapshot ledger: list, diff, checkout, drift",
        "examples:\n"
        "  python -m repro --db data.db snapshot list\n"
        "  python -m repro --db data.db snapshot diff            # parent -> head\n"
        "  python -m repro --db data.db snapshot diff --from 1 --to 3 --cves\n"
        "  python -m repro --db data.db snapshot checkout --id 2 --output feeds/\n"
        "  python -m repro --db data.db snapshot drift           # Table-1 over time",
    )
    snapshot_parser.add_argument(
        "action", choices=("list", "diff", "checkout", "drift"),
        help="ledger operation to perform",
    )
    snapshot_parser.add_argument(
        "--from", default=None, metavar="ID",
        help="diff base snapshot (default: the target's parent)",
    )
    snapshot_parser.add_argument(
        "--to", default=None, metavar="ID",
        help="diff target snapshot (default: the head)",
    )
    snapshot_parser.add_argument(
        "--id", default=None, metavar="ID",
        help="snapshot to check out (default: the head)",
    )
    snapshot_parser.add_argument(
        "--output", default=None,
        help="directory for checked-out feeds (checkout only)",
    )
    snapshot_parser.add_argument(
        "--cves", action="store_true",
        help="list every changed CVE id in diffs",
    )
    snapshot_parser.set_defaults(func=cmd_snapshot)

    feeds_parser = add_command(
        "feeds",
        "write the synthetic corpus as NVD-style feeds",
        "example:\n"
        "  python -m repro feeds --output feeds/  # per-year XML + one JSON feed\n"
        "  python -m repro --feeds feeds/ tables  # ...and read them back",
    )
    feeds_parser.add_argument("--output", required=True)
    feeds_parser.set_defaults(func=cmd_feeds)

    from repro.devtools.cli import build_check_parser, build_lint_parser

    lint_parser = add_command(
        "lint",
        "run the static-analysis rules (determinism, asyncio-safety, contracts)",
        "example:\n"
        "  python -m repro lint                       # lint src/ with the baseline\n"
        "  python -m repro lint --format json         # machine-readable findings\n"
        "  python -m repro lint --select DET001,GEN301 src/repro/itsys\n"
        "  python -m repro lint --list-rules          # rule reference\n"
        "rule documentation: docs/devtools.md",
    )
    build_lint_parser(lint_parser)
    lint_parser.set_defaults(func=cmd_lint)

    devtools_parser = add_command(
        "devtools",
        "developer tooling: `check` runs lint + docs audits in one gate",
        "example:\n"
        "  python -m repro devtools check             # the full CI static gate\n"
        "  python -m repro devtools check --format json",
    )
    devtools_parser.add_argument(
        "action", choices=("check",),
        help="devtools action to run (check: lint + docs links + API drift)",
    )
    build_check_parser(devtools_parser)
    devtools_parser.set_defaults(func=cmd_devtools)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    raise SystemExit(main())
