"""Vulnerability-lifetime statistics mined from the snapshot ledger.

The ``patch-race`` adversary scenario (:mod:`repro.itsys.scenarios`) needs a
distribution of *closure times* -- how long a vulnerability stays open
before a patch lands.  When a deployment tracks its corpus through the
snapshot ledger (:class:`repro.snapshots.store.SnapshotStore`), that history
is right there: every ``entry_version`` row records the snapshot at which an
entry first appeared, was modified (typically a fix/advisory update) or was
tombstoned, and every snapshot carries its ledger timestamp.

:func:`closure_lifetimes` turns the ledger into an empirical lifetime sample
that :class:`~repro.itsys.scenarios.ScenarioSpec` consumes directly
(``closure="empirical"``), closing the loop the paper's data section opens:
measured patch behaviour feeding the simulated patch race.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Tuple

from repro.snapshots.store import SnapshotStore

#: Seconds per day -- ledger timestamps are ISO-8601, lifetimes are in days.
_DAY_SECONDS = 86400.0


def closure_lifetimes(store: SnapshotStore) -> Tuple[float, ...]:
    """Observed vulnerability lifetimes (in days) from the snapshot ledger.

    For every CVE, each ``entry_version`` row after its first marks a change
    to the entry -- a modification or a tombstone, both evidence the vendor
    acted on it.  The lifetime of a version is the ledger time between the
    snapshot that introduced it and the snapshot that replaced it; a version
    still live at the ledger head contributes nothing (its lifetime is
    right-censored, not observed).

    Returns the positive lifetimes sorted ascending -- the canonical order
    :class:`~repro.itsys.scenarios.ScenarioSpec` stores empirical lifetimes
    in -- so a ledger always maps to exactly one spec.  Zero-length
    lifetimes (two snapshots committed with the same timestamp, common in
    tests) are dropped: a closure time of 0 would make the patch win every
    race unconditionally.
    """
    created_at: Dict[int, _dt.datetime] = {
        record.snapshot_id: _dt.datetime.fromisoformat(record.created)
        for record in store.list()
    }
    lifetimes = []
    introduced_at: Dict[str, int] = {}
    rows = store.database.connection.execute(
        "SELECT cve_id, snapshot_id FROM entry_version ORDER BY version_id"
    )
    for row in rows:
        cve_id = row["cve_id"]
        snapshot_id = row["snapshot_id"]
        previous = introduced_at.get(cve_id)
        if previous is not None:
            seconds = (
                created_at[snapshot_id] - created_at[previous]
            ).total_seconds()
            if seconds > 0:
                lifetimes.append(seconds / _DAY_SECONDS)
        # The new version's clock starts now; its own closure (if any) is
        # measured against the next change.
        introduced_at[cve_id] = snapshot_id
    return tuple(sorted(lifetimes))
