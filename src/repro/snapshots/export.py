"""Materialising snapshots back into NVD-style feeds (``snapshot checkout``).

Time-travelled entries carry no raw CPE names (those are feed provenance,
not normalized content), so exporting a snapshot as a feed synthesises one
CPE 2.2 URI per affected (OS, version) from the catalogue's canonical alias
-- the same (product, vendor) pairs the ingest normaliser resolves, which
makes the export a fixed point: re-ingesting a checked-out feed reproduces
the snapshot's dataset digest.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.core.constants import OS_CATALOG
from repro.core.enums import CPEPart
from repro.core.models import CPEName, VulnerabilityEntry
from repro.nvd.cpe import format_cpe_uri
from repro.nvd.cvss import format_cvss_vector
from repro.nvd.feed_parser import RawFeedEntry
from repro.nvd.feed_writer import write_yearly_feeds
from repro.snapshots.store import SnapshotStore


def entry_to_raw(entry: VulnerabilityEntry) -> RawFeedEntry:
    """Serialise a normalized entry as a raw feed entry.

    Prefers the entry's original raw CPE names when present; otherwise
    synthesises URIs from the catalogue's canonical aliases, one per
    affected version (or a versionless URI when the entry affects all
    versions of an OS).
    """
    if entry.raw_cpes:
        uris = [format_cpe_uri(cpe) for cpe in entry.raw_cpes]
    else:
        uris = []
        for os_name in sorted(entry.affected_os):
            catalogued = OS_CATALOG.get(os_name)
            if catalogued is None or not catalogued.cpe_aliases:
                continue
            product, vendor = catalogued.cpe_aliases[0]
            versions = entry.affected_versions.get(os_name, ()) or ("",)
            for version in versions:
                uris.append(
                    format_cpe_uri(
                        CPEName(
                            part=CPEPart.OPERATING_SYSTEM,
                            vendor=vendor,
                            product=product,
                            version=version,
                        )
                    )
                )
    return RawFeedEntry(
        cve_id=entry.cve_id,
        published=entry.published,
        summary=entry.summary,
        cvss_vector=format_cvss_vector(entry.cvss),
        cpe_uris=tuple(uris),
    )


def write_snapshot_feeds(
    store: SnapshotStore, snapshot_id: int, directory: Union[str, Path]
) -> List[Path]:
    """Write a snapshot's live entries as per-year NVD-style XML feeds.

    The standard round trip -- ``repro snapshot checkout`` then
    ``repro ingest --feeds`` into a fresh database -- reproduces the
    snapshot's dataset digest.
    """
    entries = store.entries_at(snapshot_id)
    return write_yearly_feeds([entry_to_raw(entry) for entry in entries], directory)
