"""Incremental ingestion and content-addressed dataset snapshots.

This subpackage turns the batch reproduction into an incrementally
updatable system:

* :mod:`repro.snapshots.digests` -- content addressing: canonical payloads
  and sha256 digests of normalized entries and whole dataset states;
* :mod:`repro.snapshots.store` -- the snapshot ledger
  (:class:`SnapshotStore`): commit, list, time travel (``dataset_at``) and
  snapshot diffing over a :class:`~repro.db.database.VulnerabilityDatabase`;
* :mod:`repro.snapshots.delta` -- :class:`DeltaIngestPipeline`, which
  applies NVD *modified*-feed deltas (upserts plus ``** REJECT **``
  tombstones) idempotently;
* :mod:`repro.snapshots.diff` -- :class:`SnapshotDiff` with the derived
  blast radius (affected OSes / pairs / k-sets) behind selective sweep-cache
  invalidation.

Surfaced on the command line as ``repro ingest`` and ``repro snapshot``
(see ``docs/cli.md``), documented end to end in ``docs/data-model.md`` and
benchmarked by ``benchmarks/bench_snapshots.py``.

Exports resolve lazily (PEP 562) because :mod:`repro.db` imports
:mod:`repro.snapshots.digests` while :mod:`repro.snapshots.store` imports
:mod:`repro.db` -- laziness keeps that pair acyclic at import time.
"""

from __future__ import annotations

import importlib
from typing import List

_EXPORTS = {
    "PAYLOAD_SCHEMA": "repro.snapshots.digests",
    "canonical_json": "repro.snapshots.digests",
    "dataset_digest": "repro.snapshots.digests",
    "dataset_digest_of": "repro.snapshots.digests",
    "entry_digest": "repro.snapshots.digests",
    "entry_from_json": "repro.snapshots.digests",
    "entry_from_payload": "repro.snapshots.digests",
    "entry_payload": "repro.snapshots.digests",
    "entry_to_json": "repro.snapshots.digests",
    "SnapshotDiff": "repro.snapshots.diff",
    "SnapshotRecord": "repro.snapshots.store",
    "SnapshotStore": "repro.snapshots.store",
    "DeltaIngestPipeline": "repro.snapshots.delta",
    "DeltaReport": "repro.snapshots.delta",
    "closure_lifetimes": "repro.snapshots.history",
    "entry_to_raw": "repro.snapshots.export",
    "write_snapshot_feeds": "repro.snapshots.export",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    if name in _EXPORTS:
        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
