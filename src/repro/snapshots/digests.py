"""Content addressing of normalized vulnerability entries and dataset states.

Every snapshot-related digest in the system is derived here, from exactly two
primitives:

* :func:`entry_digest` -- sha256 over the *canonical JSON payload* of one
  normalized :class:`~repro.core.models.VulnerabilityEntry`.  The payload
  (:func:`entry_payload`) covers every study-relevant field (identifier,
  publication date, summary, CVSS base vector, affected OSes and versions,
  component class, validity) in a key-sorted, separator-normalised encoding,
  so two entries digest equal iff the study cannot tell them apart.
* :func:`dataset_digest` -- sha256 over the sorted ``cve_id:entry_digest``
  lines of a dataset state.  It is order-insensitive by construction (states
  are sets of entries, not sequences), so the same corpus content always
  produces the same dataset digest no matter how it was assembled -- full
  ingest, delta chain, or time-travel reconstruction.

The payload also round-trips: :func:`entry_from_payload` rebuilds the entry
(sans raw CPE names, which are feed provenance rather than normalized
content), which is what :meth:`repro.snapshots.store.SnapshotStore.dataset_at`
uses to materialise historical dataset states.

This module deliberately imports nothing outside :mod:`repro.core`, so both
the database layer and the snapshot store can depend on it without cycles.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
from typing import Dict, Iterable, Mapping, Tuple

from repro.core.enums import AccessVector, ComponentClass, ValidityStatus
from repro.core.models import CVSSVector, VulnerabilityEntry

#: Bump when the payload layout changes; participates in every entry digest
#: so old and new digests can never be confused for one another.
PAYLOAD_SCHEMA = 1


def entry_payload(entry: VulnerabilityEntry) -> Dict[str, object]:
    """Canonical JSON-serialisable payload of one normalized entry."""
    return {
        "schema": PAYLOAD_SCHEMA,
        "cve_id": entry.cve_id,
        "published": entry.published.isoformat(),
        "summary": entry.summary,
        "cvss": {
            "access_vector": entry.cvss.access_vector.value,
            "access_complexity": entry.cvss.access_complexity,
            "authentication": entry.cvss.authentication,
            "confidentiality_impact": entry.cvss.confidentiality_impact,
            "integrity_impact": entry.cvss.integrity_impact,
            "availability_impact": entry.cvss.availability_impact,
            "base_score": entry.cvss.base_score,
        },
        "affected_os": sorted(entry.affected_os),
        "affected_versions": {
            name: list(entry.affected_versions.get(name, ()))
            for name in sorted(entry.affected_versions)
        },
        "component_class": (
            entry.component_class.value if entry.component_class else None
        ),
        "validity": entry.validity.value,
    }


def canonical_json(payload: Mapping[str, object]) -> str:
    """The canonical (key-sorted, minimal-separator) JSON encoding."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def entry_digest(entry: VulnerabilityEntry) -> str:
    """sha256 hex digest of the entry's canonical payload."""
    return hashlib.sha256(
        canonical_json(entry_payload(entry)).encode("utf-8")
    ).hexdigest()


def entry_to_json(entry: VulnerabilityEntry) -> str:
    """Canonical JSON text of the entry (stored by the snapshot ledger)."""
    return canonical_json(entry_payload(entry))


def entry_from_payload(payload: Mapping[str, object]) -> VulnerabilityEntry:
    """Rebuild a normalized entry from its canonical payload.

    Raw CPE names are not part of the normalized content (they are feed
    provenance), so reconstructed entries carry an empty ``raw_cpes`` --
    matching what :meth:`repro.db.database.VulnerabilityDatabase.load_entries`
    returns for the same entry.
    """
    cvss = payload["cvss"]  # type: ignore[index]
    versions: Dict[str, Tuple[str, ...]] = {
        name: tuple(values)
        for name, values in payload["affected_versions"].items()  # type: ignore[union-attr]
    }
    return VulnerabilityEntry(
        cve_id=str(payload["cve_id"]),
        published=_dt.date.fromisoformat(str(payload["published"])),
        summary=str(payload["summary"]),
        cvss=CVSSVector(
            access_vector=AccessVector(cvss["access_vector"]),  # type: ignore[index]
            access_complexity=cvss["access_complexity"],  # type: ignore[index]
            authentication=cvss["authentication"],  # type: ignore[index]
            confidentiality_impact=cvss["confidentiality_impact"],  # type: ignore[index]
            integrity_impact=cvss["integrity_impact"],  # type: ignore[index]
            availability_impact=cvss["availability_impact"],  # type: ignore[index]
            base_score=cvss["base_score"],  # type: ignore[index]
        ),
        affected_os=frozenset(payload["affected_os"]),  # type: ignore[arg-type]
        affected_versions=versions,
        component_class=(
            ComponentClass(payload["component_class"])
            if payload["component_class"]
            else None
        ),
        validity=ValidityStatus(payload["validity"]),
    )


def entry_from_json(text: str) -> VulnerabilityEntry:
    """Inverse of :func:`entry_to_json`."""
    return entry_from_payload(json.loads(text))


def dataset_digest(state: Mapping[str, str]) -> str:
    """sha256 over the sorted ``cve_id:entry_digest`` lines of a state.

    ``state`` maps CVE identifiers to their entry digests.  Sorting makes the
    digest a pure function of the *set* of (id, content) pairs, so it is the
    content address of a dataset state: two states digest equal iff they hold
    the same entries with the same normalized content.
    """
    hasher = hashlib.sha256()
    for cve_id in sorted(state):
        hasher.update(f"{cve_id}:{state[cve_id]}\n".encode("utf-8"))
    return hasher.hexdigest()


def dataset_digest_of(entries: Iterable[VulnerabilityEntry]) -> str:
    """The dataset digest of an entry collection (convenience wrapper)."""
    return dataset_digest({entry.cve_id: entry_digest(entry) for entry in entries})
