"""Incremental (NVD *modified*-feed) ingestion.

The batch :class:`~repro.db.ingest.IngestPipeline` re-parses and re-inserts
the whole corpus on every run; this module applies a **delta**: a feed that
carries only the entries republished since the last pull, plus
``** REJECT **`` tombstones for withdrawn ones -- the shape of NVD's
``nvdcve-2.0-modified.xml``.

For every raw delta entry the pipeline:

* tombstones the stored entry when the delta rejects it
  (:attr:`~repro.nvd.feed_parser.RawFeedEntry.is_rejected`) **or** when its
  republished form no longer resolves to any catalogued OS (it left the
  study's scope);
* otherwise converts it through the same normalisation/classification path
  as a full ingest and upserts it -- insert when new, update when the
  normalized content digest changed, *no-op* when identical.  Digest-equal
  re-application therefore touches nothing, which makes replaying a delta
  idempotent.

After the database mutation the attached snapshot store commits, so each
applied delta yields exactly one ledger entry (or none, when the delta was
already applied) whose digest identifies the resulting dataset state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.db.ingest import IngestPipeline
from repro.nvd.feed_parser import RawFeedEntry, parse_xml_feed
from repro.nvd.json_feed import parse_json_feed
from repro.obs.clock import CLOCK, Clock
from repro.obs.metrics import SIZE_BUCKETS, MetricsRegistry
from repro.obs.tracing import Tracer
from repro.snapshots.store import SnapshotRecord, SnapshotStore


@dataclass
class DeltaReport:
    """Summary of one applied delta."""

    parsed_entries: int = 0
    added: int = 0
    modified: int = 0
    unchanged: int = 0
    removed: int = 0
    #: Delta entries that neither matched a catalogued OS nor a stored row.
    skipped_no_os: int = 0
    #: Snapshot committed after the delta (``None`` with ``commit=False``).
    snapshot: Optional[SnapshotRecord] = None
    by_outcome: Dict[str, int] = field(default_factory=dict)

    @property
    def changed(self) -> int:
        """Number of database mutations the delta caused."""
        return self.added + self.modified + self.removed

    def summary(self) -> str:
        digest = self.snapshot.short_digest if self.snapshot else "uncommitted"
        return (
            f"delta: {self.parsed_entries} entries -> +{self.added} added, "
            f"~{self.modified} modified, -{self.removed} removed, "
            f"{self.unchanged} unchanged, {self.skipped_no_os} out of scope "
            f"[snapshot {digest}]"
        )


class DeltaIngestPipeline:
    """Applies modified-feed deltas to an existing ingested database."""

    def __init__(
        self,
        pipeline: IngestPipeline,
        store: Optional[SnapshotStore] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.pipeline = pipeline
        self.database = pipeline.database
        self.store = store or SnapshotStore(self.database)
        self._subscribers: List[Callable[[DeltaReport], None]] = []
        # Observability only: apply latency, blast-radius size and a delta
        # counter.  Reports stay byte-identical whether or not a shared
        # registry is wired in.
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer
        self._clock = clock if clock is not None else CLOCK
        self._apply_seconds = self._metrics.histogram(
            "ingest_apply_seconds",
            "Wall time of one delta application (mutations + commit).",
        )
        self._blast_entries = self._metrics.histogram(
            "ingest_blast_entries",
            "Database mutations (blast radius) per applied delta.",
            buckets=SIZE_BUCKETS,
        )
        self._deltas_counter = self._metrics.counter(
            "ingest_deltas_total",
            "Deltas applied, by whether they changed the dataset.",
            labels=("outcome",),
        )

    def subscribe(self, callback: Callable[[DeltaReport], None]) -> None:
        """Register a callback invoked after each delta that cut a snapshot.

        The callback receives the :class:`DeltaReport` (whose ``snapshot``
        is the freshly-committed ledger record) synchronously, before
        :meth:`apply_raw` returns.  Long-lived consumers -- the serving
        layer's response cache -- use it to invalidate exactly the state a
        delta's blast radius can touch.  Deltas that change nothing (a
        replayed feed) still notify, letting subscribers observe the
        no-op; ``commit=False`` applications never do.
        """
        self._subscribers.append(callback)

    # -- application ------------------------------------------------------------

    def apply_raw(
        self,
        raw_entries: Sequence[RawFeedEntry],
        source: str = "delta",
        commit: bool = True,
        created: Optional[str] = None,
    ) -> DeltaReport:
        """Apply already-parsed delta entries; returns the report.

        ``source`` is recorded as the committed snapshot's feed provenance.
        With ``commit=False`` the database is mutated but no snapshot is
        cut (callers batching several deltas commit once at the end).
        ``created`` pins the committed snapshot's ledger timestamp (see
        :meth:`SnapshotStore.commit`); omitted, the store stamps it.
        """
        started = self._clock.perf()
        report = DeltaReport(parsed_entries=len(raw_entries))
        for raw in raw_entries:
            outcome = self._apply_one(raw)
            report.by_outcome[outcome] = report.by_outcome.get(outcome, 0) + 1
            if outcome == "added":
                report.added += 1
            elif outcome == "modified":
                report.modified += 1
            elif outcome == "unchanged":
                report.unchanged += 1
            elif outcome == "removed":
                report.removed += 1
            else:
                report.skipped_no_os += 1
        if commit:
            report.snapshot = self.store.commit(source=source, created=created)
        elapsed = self._clock.perf() - started
        self._apply_seconds.observe(elapsed)
        self._blast_entries.observe(report.changed)
        self._deltas_counter.inc(
            outcome="changed" if report.changed else "no-op"
        )
        if self._tracer is not None:
            trace = self._tracer.current()
            if trace is not None:
                trace.record(
                    "ingest.apply",
                    started,
                    elapsed,
                    {"changed": str(report.changed), "source": source},
                )
        if commit:
            for callback in self._subscribers:
                callback(report)
        return report

    def _apply_one(self, raw: RawFeedEntry) -> str:
        if raw.is_rejected:
            return "removed" if self.database.tombstone_entry(raw.cve_id) else "skipped"
        entry = self.pipeline.convert(raw)
        if entry is None:
            # Republished outside the catalogue: the stored entry (if any)
            # left the study's scope and is withdrawn from the live set.
            return "removed" if self.database.tombstone_entry(raw.cve_id) else "skipped"
        return self.database.upsert_entry(entry)

    def apply_xml_feed(
        self,
        path: Union[str, Path],
        source: Optional[str] = None,
        commit: bool = True,
        created: Optional[str] = None,
    ) -> DeltaReport:
        """Parse and apply one XML modified feed."""
        return self.apply_raw(
            parse_xml_feed(path),
            source=source or str(path),
            commit=commit,
            created=created,
        )

    def apply_json_feed(
        self,
        path: Union[str, Path],
        source: Optional[str] = None,
        commit: bool = True,
        created: Optional[str] = None,
    ) -> DeltaReport:
        """Parse and apply one JSON modified feed."""
        return self.apply_raw(
            parse_json_feed(path),
            source=source or str(path),
            commit=commit,
            created=created,
        )

    def apply_feed(
        self,
        path: Union[str, Path],
        source: Optional[str] = None,
        commit: bool = True,
        created: Optional[str] = None,
    ) -> DeltaReport:
        """Apply a feed file, dispatching on its suffix (.xml or .json)."""
        if str(path).endswith(".json"):
            return self.apply_json_feed(
                path, source=source, commit=commit, created=created
            )
        return self.apply_xml_feed(
            path, source=source, commit=commit, created=created
        )
