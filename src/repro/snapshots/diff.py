"""Snapshot diffs and their analysis blast radius.

A :class:`SnapshotDiff` is the answer to "what changed between two dataset
states, and which analysis results can that change touch?".  Beyond the raw
added/modified/removed CVE id sets it derives:

* :meth:`SnapshotDiff.affected_os_names` -- every OS that gains or loses a
  vulnerability (the union of old *and* new affected-OS sets of every
  changed entry: an entry that *stops* affecting an OS still changes that
  OS's counts);
* :meth:`SnapshotDiff.affected_pairs` / :meth:`SnapshotDiff.affected_ksets`
  -- the OS pairs / k-combinations whose shared counts can move, i.e. those
  drawn from a changed entry's affected-OS sets;
* :meth:`SnapshotDiff.touches_group` -- whether a replica configuration's
  result can differ between the two snapshots, which is exactly the
  predicate the sweep cache's scoped digests enforce mechanically
  (:func:`repro.runner.cache.scoped_corpus_digest`).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Mapping, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.models import VulnerabilityEntry
    from repro.snapshots.store import SnapshotRecord


@dataclass(frozen=True)
class SnapshotDiff:
    """Change set between two snapshots, plus its derived blast radius."""

    from_snapshot: "SnapshotRecord"
    to_snapshot: "SnapshotRecord"
    #: CVE ids present only in the target snapshot.
    added: Tuple[str, ...]
    #: CVE ids present in both but with different normalized content.
    modified: Tuple[str, ...]
    #: CVE ids present only in the source snapshot.
    removed: Tuple[str, ...]
    #: Pre-change entries of modified and removed CVEs.
    old_entries: Mapping[str, "VulnerabilityEntry"]
    #: Post-change entries of added and modified CVEs.
    new_entries: Mapping[str, "VulnerabilityEntry"]

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.modified or self.removed)

    @property
    def changed(self) -> Tuple[str, ...]:
        """All changed CVE ids (added + modified + removed), sorted."""
        return tuple(sorted({*self.added, *self.modified, *self.removed}))

    # -- blast radius -----------------------------------------------------------

    def _changed_os_sets(self) -> List[FrozenSet[str]]:
        """The affected-OS set of every changed entry, old and new sides."""
        sets: List[FrozenSet[str]] = []
        for entry in self.old_entries.values():
            sets.append(entry.affected_os)
        for entry in self.new_entries.values():
            sets.append(entry.affected_os)
        return sets

    def affected_os_names(self) -> FrozenSet[str]:
        """Every OS whose per-OS counts can differ between the snapshots."""
        names: Set[str] = set()
        for os_set in self._changed_os_sets():
            names.update(os_set)
        return frozenset(names)

    def affected_pairs(self) -> FrozenSet[Tuple[str, str]]:
        """OS pairs whose shared-vulnerability counts can differ.

        Only pairs *within* one changed entry's affected-OS set qualify: a
        shared count moves only when a changed entry covers both members.
        """
        return self.affected_ksets(2)

    def affected_ksets(self, k: int) -> FrozenSet[Tuple[str, ...]]:
        """Sorted k-combinations whose shared counts can differ."""
        if k < 1:
            raise ValueError("k must be at least 1")
        ksets: Set[Tuple[str, ...]] = set()
        for os_set in self._changed_os_sets():
            if len(os_set) < k:
                continue
            ksets.update(combinations(sorted(os_set), k))
        return frozenset(ksets)

    def touches_group(self, os_names: Sequence[str]) -> bool:
        """Whether a replica group's analysis/simulation results can change.

        True when any changed entry affects at least one member of the
        group; a warm sweep only needs to re-run cells for which this holds.
        """
        members = set(os_names)
        return any(os_set & members for os_set in self._changed_os_sets())

    # -- reporting --------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        return {
            "added": len(self.added),
            "modified": len(self.modified),
            "removed": len(self.removed),
        }

    def summary(self) -> str:
        """Multi-line human-readable diff summary."""
        lines = [
            f"snapshot #{self.from_snapshot.snapshot_id} "
            f"({self.from_snapshot.short_digest}) -> "
            f"#{self.to_snapshot.snapshot_id} ({self.to_snapshot.short_digest})",
            f"  +{len(self.added)} added, ~{len(self.modified)} modified, "
            f"-{len(self.removed)} removed",
        ]
        affected = sorted(self.affected_os_names())
        if affected:
            lines.append("  affected OSes: " + ", ".join(affected))
            pairs = sorted(self.affected_pairs())
            preview = ", ".join("-".join(pair) for pair in pairs[:6])
            if len(pairs) > 6:
                preview += f", ... ({len(pairs)} total)"
            if pairs:
                lines.append("  affected pairs: " + preview)
        return "\n".join(lines)
