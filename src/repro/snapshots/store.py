"""The snapshot ledger: content-addressed dataset states with time travel.

A :class:`SnapshotStore` wraps a :class:`~repro.db.database
.VulnerabilityDatabase` and materialises *snapshots* of its live entry set:

* :meth:`SnapshotStore.commit` computes the dataset's content digest
  (:func:`~repro.snapshots.digests.dataset_digest` -- sha256 over the sorted
  ``cve_id:entry_digest`` pairs), records a ledger row (digest, parent
  digest, creation time, feed provenance, entry-count deltas) and appends
  one :mod:`entry_version <repro.db.schema>` row per entry that *changed*
  relative to the parent snapshot.  Committing an unchanged database is a
  no-op that returns the existing head -- the property behind idempotent
  delta re-application.
* :meth:`SnapshotStore.dataset_at` reconstructs the entry set of any
  historical snapshot from the version chain and returns it as a
  :class:`~repro.analysis.dataset.VulnerabilityDataset`, ordered exactly
  like a fresh :meth:`~repro.db.database.VulnerabilityDatabase.load_entries`
  (by publication date, then CVE id) so time-travelled datasets are
  indistinguishable from from-scratch ingests.
* :meth:`SnapshotStore.diff` compares two snapshots and reports which CVEs
  -- and therefore which OSes, OS pairs and k-sets -- are affected, which is
  what selective cache invalidation keys off.

Storage is delta-compressed: snapshot ``N`` stores payloads only for the
entries it changed, so a long chain of small deltas stays small.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import DatabaseError
from repro.snapshots.digests import (
    dataset_digest,
    entry_from_json,
    entry_to_json,
)
from repro.snapshots.diff import SnapshotDiff

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (db imports digests)
    from repro.analysis.dataset import VulnerabilityDataset
    from repro.core.models import VulnerabilityEntry
    from repro.db.database import VulnerabilityDatabase


@dataclass(frozen=True)
class SnapshotRecord:
    """One row of the snapshot ledger."""

    snapshot_id: int
    digest: str
    parent_digest: Optional[str]
    created: str
    source: str
    entry_count: int
    added: int
    modified: int
    removed: int

    @property
    def short_digest(self) -> str:
        return self.digest[:12]

    def summary(self) -> str:
        """One-line human-readable ledger line."""
        parent = self.parent_digest[:12] if self.parent_digest else "-"
        return (
            f"#{self.snapshot_id} {self.short_digest} parent={parent} "
            f"entries={self.entry_count} (+{self.added} ~{self.modified} "
            f"-{self.removed}) source={self.source or '-'} at {self.created}"
        )


class SnapshotStore:
    """Snapshot ledger and time-travel queries over one database."""

    def __init__(self, database: "VulnerabilityDatabase") -> None:
        self._db = database
        self._conn = database.connection

    @property
    def database(self) -> "VulnerabilityDatabase":
        return self._db

    # -- ledger ----------------------------------------------------------------

    @staticmethod
    def _record(row) -> SnapshotRecord:
        return SnapshotRecord(
            snapshot_id=row["snapshot_id"],
            digest=row["digest"],
            parent_digest=row["parent_digest"],
            created=row["created"],
            source=row["source"],
            entry_count=row["entry_count"],
            added=row["added"],
            modified=row["modified"],
            removed=row["removed"],
        )

    def head(self) -> Optional[SnapshotRecord]:
        """The most recent snapshot, or ``None`` on a fresh database."""
        row = self._conn.execute(
            "SELECT * FROM snapshot ORDER BY snapshot_id DESC LIMIT 1"
        ).fetchone()
        return self._record(row) if row is not None else None

    def list(self) -> List[SnapshotRecord]:
        """All snapshots, oldest first."""
        return [
            self._record(row)
            for row in self._conn.execute(
                "SELECT * FROM snapshot ORDER BY snapshot_id"
            )
        ]

    def get(self, snapshot_id: int) -> SnapshotRecord:
        """The ledger row for one snapshot id."""
        row = self._conn.execute(
            "SELECT * FROM snapshot WHERE snapshot_id = ?", (snapshot_id,)
        ).fetchone()
        if row is None:
            raise DatabaseError(f"no snapshot with id {snapshot_id}")
        return self._record(row)

    def resolve(self, spec: str) -> SnapshotRecord:
        """Resolve a ledger-id-or-digest-prefix selector to a record.

        All-digit selectors prefer the ledger-id reading but fall back to
        a digest-prefix match on a miss (an all-digit string like
        ``"2778"`` can also be a hex prefix).  The single resolver behind
        the CLI's ``--snapshot`` and the service's snapshot endpoints;
        raises :class:`~repro.core.exceptions.DatabaseError` when nothing
        matches.
        """
        if spec.isdigit():
            try:
                return self.get(int(spec))
            except DatabaseError:
                pass
        return self.by_digest(spec)

    def by_digest(self, digest: str) -> SnapshotRecord:
        """The most recent snapshot carrying the given (possibly short) digest.

        Prefix matching uses ``substr`` rather than ``LIKE``, so selectors
        containing SQL wildcards (``%``, ``_``) cannot match arbitrary rows.
        """
        if not digest:
            raise DatabaseError("an empty digest matches no snapshot")
        row = self._conn.execute(
            "SELECT * FROM snapshot WHERE substr(digest, 1, ?) = ?"
            " ORDER BY snapshot_id DESC LIMIT 1",
            (len(digest), digest),
        ).fetchone()
        if row is None:
            raise DatabaseError(f"no snapshot with digest {digest!r}")
        return self._record(row)

    # -- commit ----------------------------------------------------------------

    def commit(
        self, source: str = "", created: Optional[str] = None
    ) -> SnapshotRecord:
        """Snapshot the database's current live state.

        Returns the new ledger record -- or the existing head unchanged when
        the live state digests identically to it (idempotence: re-applying
        an already-applied delta and committing produces no new snapshot).
        ``source`` records feed provenance (a path, URL or label).
        ``created`` pins the ledger timestamp (ISO-8601); it defaults to the
        current UTC time and is the store's only wall-clock seam -- it is
        recorded for provenance and never feeds digests.
        """
        live = self._db.live_state()
        digest = dataset_digest(live)
        head = self.head()
        if head is not None and head.digest == digest:
            return head
        parent_state = self._state_at(head.snapshot_id) if head is not None else {}
        added = sorted(set(live) - set(parent_state))
        removed = sorted(set(parent_state) - set(live))
        modified = sorted(
            cve_id
            for cve_id in set(live) & set(parent_state)
            if live[cve_id] != parent_state[cve_id]
        )
        if created is None:
            created = _dt.datetime.now(_dt.timezone.utc).isoformat(  # repro: noqa[DET002] -- the single sanctioned wall-clock seam; callers inject `created=` for reproducible ledgers
                timespec="seconds"
            )
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO snapshot (digest, parent_digest, created, source,"
                " entry_count, added, modified, removed)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    digest,
                    head.digest if head is not None else None,
                    created,
                    source,
                    len(live),
                    len(added),
                    len(modified),
                    len(removed),
                ),
            )
            snapshot_id = cursor.lastrowid
            changed = added + modified
            payloads = {
                entry.cve_id: entry_to_json(entry)
                for entry in self._db.load_entries(cve_ids=changed)
            }
            for cve_id in changed:
                self._conn.execute(
                    "INSERT INTO entry_version"
                    " (snapshot_id, cve_id, entry_digest, payload, deleted)"
                    " VALUES (?, ?, ?, ?, 0)",
                    (snapshot_id, cve_id, live[cve_id], payloads[cve_id]),
                )
            for cve_id in removed:
                self._conn.execute(
                    "INSERT INTO entry_version"
                    " (snapshot_id, cve_id, entry_digest, payload, deleted)"
                    " VALUES (?, ?, NULL, NULL, 1)",
                    (snapshot_id, cve_id),
                )
        return self.get(snapshot_id)

    # -- time travel ------------------------------------------------------------

    def _version_rows_at(self, snapshot_id: int):
        """Latest version row per CVE as of ``snapshot_id`` (incl. tombstones)."""
        return self._conn.execute(
            """
            SELECT ev.cve_id, ev.entry_digest, ev.payload, ev.deleted
            FROM entry_version ev
            JOIN (
                SELECT cve_id, MAX(version_id) AS latest
                FROM entry_version
                WHERE snapshot_id <= ?
                GROUP BY cve_id
            ) last ON last.latest = ev.version_id
            """,
            (snapshot_id,),
        ).fetchall()

    def _state_at(self, snapshot_id: int) -> Dict[str, str]:
        """Mapping of live CVE ids to entry digests as of a snapshot."""
        return {
            row["cve_id"]: row["entry_digest"]
            for row in self._version_rows_at(snapshot_id)
            if not row["deleted"]
        }

    def entries_at(self, snapshot_id: int) -> List["VulnerabilityEntry"]:
        """The live entries of a snapshot, ordered by (published, cve_id).

        The ordering matches :meth:`~repro.db.database.VulnerabilityDatabase
        .load_entries`, so a time-travelled entry list is byte-compatible
        with a from-scratch ingest of the same feed state -- the equality
        property ``tests/snapshots`` pins down.
        """
        self.get(snapshot_id)  # raises on unknown ids
        entries = [
            entry_from_json(row["payload"])
            for row in self._version_rows_at(snapshot_id)
            if not row["deleted"]
        ]
        entries.sort(key=lambda entry: (entry.published, entry.cve_id))
        return entries

    def dataset_at(
        self, snapshot_id: int, engine: str = "bitset"
    ) -> "VulnerabilityDataset":
        """The dataset pinned to a snapshot (see :meth:`entries_at`)."""
        from repro.analysis.dataset import VulnerabilityDataset

        record = self.get(snapshot_id)
        return VulnerabilityDataset(
            self.entries_at(snapshot_id),
            engine=engine,
            snapshot=record,
        )

    # -- diffing ----------------------------------------------------------------

    def diff(self, from_id: int, to_id: int) -> SnapshotDiff:
        """What changed between two snapshots (in either direction).

        The diff carries the changed CVE ids, the old/new entry payloads and
        the derived blast radius (affected OS names, pairs, k-sets) consumed
        by selective cache invalidation and the CLI.
        """
        from_record = self.get(from_id)
        to_record = self.get(to_id)
        before = {
            row["cve_id"]: (row["entry_digest"], row["payload"])
            for row in self._version_rows_at(from_id)
            if not row["deleted"]
        }
        after = {
            row["cve_id"]: (row["entry_digest"], row["payload"])
            for row in self._version_rows_at(to_id)
            if not row["deleted"]
        }
        added = sorted(set(after) - set(before))
        removed = sorted(set(before) - set(after))
        modified = sorted(
            cve_id
            for cve_id in set(before) & set(after)
            if before[cve_id][0] != after[cve_id][0]
        )
        old_entries = {
            cve_id: entry_from_json(before[cve_id][1])
            for cve_id in (*modified, *removed)
        }
        new_entries = {
            cve_id: entry_from_json(after[cve_id][1])
            for cve_id in (*added, *modified)
        }
        return SnapshotDiff(
            from_snapshot=from_record,
            to_snapshot=to_record,
            added=tuple(added),
            modified=tuple(modified),
            removed=tuple(removed),
            old_entries=old_entries,
            new_entries=new_entries,
        )
