"""The 11-OS catalogue and study periods used by the paper.

The paper clusters 64 CPE product identifiers into 11 operating-system
distributions covering four families (Section III).  This module records that
catalogue -- including the (product, vendor) aliases under which each
distribution appears in NVD feeds and the release timeline shown on Figure 2
-- together with the study period and the history/observed split used in
Section IV-C.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Mapping, Tuple

from repro.core.enums import OSFamily
from repro.core.models import OperatingSystem, OSRelease

#: First and last publication dates covered by the study (Section III: feeds
#: from 2002 to 2010, where the 2002 feed reaches back to 1994; the last feed
#: analysed stops at September 30th 2010).
STUDY_PERIOD: Tuple[_dt.date, _dt.date] = (
    _dt.date(1994, 1, 1),
    _dt.date(2010, 9, 30),
)

#: History period used to *select* replica sets (Section IV-C).
HISTORY_PERIOD: Tuple[_dt.date, _dt.date] = (
    _dt.date(1994, 1, 1),
    _dt.date(2005, 12, 31),
)

#: Observed period used to *evaluate* the selected replica sets.
OBSERVED_PERIOD: Tuple[_dt.date, _dt.date] = (
    _dt.date(2006, 1, 1),
    _dt.date(2010, 9, 30),
)


def _os(
    name: str,
    family: OSFamily,
    vendor: str,
    aliases: Tuple[Tuple[str, str], ...],
    first_year: int,
    releases: Tuple[Tuple[str, int], ...] = (),
) -> OperatingSystem:
    release_objs = tuple(
        OSRelease(os_name=name, version=version, year=year) for version, year in releases
    )
    return OperatingSystem(
        name=name,
        family=family,
        vendor=vendor,
        cpe_aliases=aliases,
        first_release_year=first_year,
        releases=release_objs,
    )


#: The 11 operating systems studied by the paper, keyed by canonical name.
#: The alias lists reproduce the normalisation step of Section III (e.g. the
#: ("debian_linux", "debian") vs ("linux", "debian") duplicates found in NVD).
OS_CATALOG: Mapping[str, OperatingSystem] = {
    "OpenBSD": _os(
        "OpenBSD",
        OSFamily.BSD,
        "openbsd",
        (("openbsd", "openbsd"),),
        1996,
        (("1.2", 1996), ("3.1", 2002), ("3.5", 2004), ("4.5", 2009)),
    ),
    "NetBSD": _os(
        "NetBSD",
        OSFamily.BSD,
        "netbsd",
        (("netbsd", "netbsd"),),
        1993,
        (("1.0", 1994), ("3.0.1", 2006), ("5.0", 2009)),
    ),
    "FreeBSD": _os(
        "FreeBSD",
        OSFamily.BSD,
        "freebsd",
        (("freebsd", "freebsd"),),
        1993,
        (
            ("3.0", 1998),
            ("4.0", 2000),
            ("5.0", 2003),
            ("6.0", 2005),
            ("7.0", 2008),
            ("8.0", 2009),
        ),
    ),
    "OpenSolaris": _os(
        "OpenSolaris",
        OSFamily.SOLARIS,
        "sun",
        (("opensolaris", "sun"), ("opensolaris", "oracle")),
        2008,
        (("2008.05", 2008), ("2009.06", 2009)),
    ),
    "Solaris": _os(
        "Solaris",
        OSFamily.SOLARIS,
        "sun",
        (("solaris", "sun"), ("sunos", "sun"), ("solaris", "oracle")),
        1993,
        (("2.1", 1993), ("7", 1998), ("8", 2000), ("10", 2005)),
    ),
    "Debian": _os(
        "Debian",
        OSFamily.LINUX,
        "debian",
        (("debian_linux", "debian"), ("linux", "debian")),
        1996,
        (
            ("1.1", 1996),
            ("2.1", 1999),
            ("2.2", 2000),
            ("3.0", 2002),
            ("3.1", 2005),
            ("4.0", 2007),
            ("5.0", 2009),
        ),
    ),
    "Ubuntu": _os(
        "Ubuntu",
        OSFamily.LINUX,
        "canonical",
        (("ubuntu_linux", "canonical"), ("ubuntu", "ubuntu"), ("ubuntu_linux", "ubuntu")),
        2004,
        (("4.10", 2004), ("5.0", 2005), ("9.04", 2009)),
    ),
    "RedHat": _os(
        "RedHat",
        OSFamily.LINUX,
        "redhat",
        (
            ("linux", "redhat"),
            ("enterprise_linux", "redhat"),
            ("redhat_linux", "redhat"),
            ("redhat_enterprise_linux", "redhat"),
        ),
        1995,
        (
            ("6.0", 1999),
            ("6.2*", 2000),
            ("7", 2000),
            ("3", 2003),
            ("4.0", 2005),
            ("5.0", 2007),
            ("5.4", 2009),
        ),
    ),
    "Windows2000": _os(
        "Windows2000",
        OSFamily.WINDOWS,
        "microsoft",
        (("windows_2000", "microsoft"), ("windows_2k", "microsoft")),
        1999,
        (("2000", 2000), ("SP4", 2003)),
    ),
    "Windows2003": _os(
        "Windows2003",
        OSFamily.WINDOWS,
        "microsoft",
        (("windows_server_2003", "microsoft"), ("windows_2003_server", "microsoft")),
        2003,
        (("2003", 2003), ("SP1", 2005), ("SP2", 2007)),
    ),
    "Windows2008": _os(
        "Windows2008",
        OSFamily.WINDOWS,
        "microsoft",
        (("windows_server_2008", "microsoft"),),
        2008,
        (("2008", 2008), ("SP1", 2009)),
    ),
}

#: Canonical OS names in the order used by the paper's tables.
OS_NAMES: Tuple[str, ...] = tuple(OS_CATALOG)

#: OS names grouped by family, in paper order.
FAMILY_MEMBERS: Mapping[OSFamily, Tuple[str, ...]] = {
    OSFamily.BSD: ("OpenBSD", "NetBSD", "FreeBSD"),
    OSFamily.SOLARIS: ("OpenSolaris", "Solaris"),
    OSFamily.LINUX: ("Debian", "Ubuntu", "RedHat"),
    OSFamily.WINDOWS: ("Windows2000", "Windows2003", "Windows2008"),
}

#: The eight OSes used in the history/observed experiment (Table V).  Ubuntu,
#: OpenSolaris and Windows 2008 are excluded for lack of meaningful history
#: data (Section IV-C).
TABLE5_OSES: Tuple[str, ...] = (
    "OpenBSD",
    "NetBSD",
    "FreeBSD",
    "Solaris",
    "Debian",
    "RedHat",
    "Windows2000",
    "Windows2003",
)

#: Replica-set configurations evaluated on Figure 3.
FIGURE3_CONFIGURATIONS: Mapping[str, Tuple[str, ...]] = {
    "Debian": ("Debian",),
    "Set1": ("Windows2003", "Solaris", "Debian", "OpenBSD"),
    "Set2": ("Windows2003", "Solaris", "Debian", "NetBSD"),
    "Set3": ("Windows2003", "Solaris", "RedHat", "NetBSD"),
    "Set4": ("OpenBSD", "NetBSD", "Debian", "RedHat"),
}


def get_os(name: str) -> OperatingSystem:
    """Look up an OS by canonical name (case-insensitive, alias-tolerant).

    >>> get_os("debian").name
    'Debian'
    """
    if name in OS_CATALOG:
        return OS_CATALOG[name]
    lowered = name.lower().replace(" ", "").replace("_", "").replace("-", "")
    for canonical, os_obj in OS_CATALOG.items():
        if canonical.lower() == lowered:
            return os_obj
    aliases: Dict[str, str] = {
        "win2000": "Windows2000",
        "win2k": "Windows2000",
        "windows2000": "Windows2000",
        "win2003": "Windows2003",
        "windows2003": "Windows2003",
        "win2008": "Windows2008",
        "windows2008": "Windows2008",
        "redhatlinux": "RedHat",
        "rhel": "RedHat",
    }
    if lowered in aliases:
        return OS_CATALOG[aliases[lowered]]
    raise KeyError(f"unknown operating system: {name!r}")


def canonical_os_name(name: str) -> str:
    """Return the canonical catalogue name for ``name`` (see :func:`get_os`)."""
    return get_os(name).name


def family_of(name: str) -> OSFamily:
    """Family of the given OS distribution."""
    return get_os(name).family
