"""Dataclasses describing vulnerabilities, platforms and operating systems.

These types are deliberately plain containers: parsing lives in
:mod:`repro.nvd`, persistence in :mod:`repro.db` and analysis in
:mod:`repro.analysis`.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Mapping, Optional, Sequence, Tuple

from repro.core.enums import (
    AccessVector,
    ComponentClass,
    CPEPart,
    OSFamily,
    ValidityStatus,
)
from repro.core.versions import Version


@dataclass(frozen=True)
class CPEName:
    """A parsed Common Platform Enumeration (CPE 2.2) name.

    Only the fields the study uses are modelled: ``part`` (hardware /
    operating system / application), ``vendor``, ``product`` and ``version``.
    """

    part: CPEPart
    vendor: str
    product: str
    version: str = ""
    update: str = ""
    edition: str = ""
    language: str = ""

    @property
    def is_operating_system(self) -> bool:
        """True when the CPE denotes an operating-system platform (``/o``)."""
        return self.part is CPEPart.OPERATING_SYSTEM

    @property
    def version_obj(self) -> Version:
        return Version(self.version)

    def key(self) -> Tuple[str, str]:
        """The (product, vendor) pair used for product normalisation."""
        return (self.product, self.vendor)


@dataclass(frozen=True)
class CVSSVector:
    """A CVSS v2 base vector together with its (computed) base score."""

    access_vector: AccessVector
    access_complexity: str = "LOW"
    authentication: str = "NONE"
    confidentiality_impact: str = "PARTIAL"
    integrity_impact: str = "PARTIAL"
    availability_impact: str = "PARTIAL"
    base_score: Optional[float] = None

    @property
    def is_remote(self) -> bool:
        return self.access_vector.is_remote


@dataclass(frozen=True)
class OSRelease:
    """A named release of an operating-system distribution.

    ``version`` is the release label (e.g. ``"4.0"`` for Debian etch) and
    ``year`` the year of first availability, used by the temporal analysis and
    by the release-level diversity study.
    """

    os_name: str
    version: str
    year: int
    label: str = ""

    @property
    def version_obj(self) -> Version:
        return Version(self.version)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.os_name} {self.version}"


@dataclass(frozen=True)
class OperatingSystem:
    """One of the 11 OS distributions studied by the paper."""

    name: str
    family: OSFamily
    vendor: str
    #: (product, vendor) aliases under which the OS appears in NVD CPEs.
    cpe_aliases: Tuple[Tuple[str, str], ...] = ()
    #: Year of the first release covered by the study.
    first_release_year: int = 1993
    releases: Tuple[OSRelease, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def release(self, version: str) -> OSRelease:
        """Return the catalogued release with the given version label.

        Raises :class:`KeyError` when the release is not catalogued.
        """
        for rel in self.releases:
            if rel.version == version:
                return rel
        raise KeyError(f"{self.name} has no catalogued release {version!r}")

    def matches_cpe(self, cpe: CPEName) -> bool:
        """Whether an OS-part CPE name refers to this distribution."""
        if not cpe.is_operating_system:
            return False
        return (cpe.product, cpe.vendor) in self.cpe_aliases


@dataclass(frozen=True)
class VulnerabilityEntry:
    """A single NVD entry (one CVE identifier) restricted to the study fields.

    The paper keeps, for each entry: the CVE name, publication date, summary,
    exploit type (local or remote, via the CVSS access vector) and the list of
    affected OS configurations.  We additionally carry the component class and
    validity status assigned during the (re-implemented) manual analysis.
    """

    cve_id: str
    published: _dt.date
    summary: str
    cvss: CVSSVector
    #: Names of affected OS distributions (normalised to the 11-OS catalogue).
    affected_os: FrozenSet[str]
    #: Affected versions per OS name; empty tuple means "all versions".
    affected_versions: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    component_class: Optional[ComponentClass] = None
    validity: ValidityStatus = ValidityStatus.VALID
    #: Raw CPE names as they appeared in the feed (before normalisation).
    raw_cpes: Tuple[CPEName, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.affected_os, frozenset):
            object.__setattr__(self, "affected_os", frozenset(self.affected_os))
        # Canonicalise the version mapping: values become tuples and OSes
        # with no recorded versions ("all versions") are dropped, since
        # ``affected_versions.get(name, ())`` reads both spellings the same.
        # Entries built directly, loaded from the database or reconstructed
        # from a snapshot payload therefore compare (and digest) equal.
        canonical = {
            name: tuple(versions)
            for name, versions in self.affected_versions.items()
            if tuple(versions)
        }
        object.__setattr__(self, "affected_versions", canonical)

    # -- convenience -------------------------------------------------------

    @property
    def year(self) -> int:
        """Publication year of the entry."""
        return self.published.year

    @property
    def is_valid(self) -> bool:
        return self.validity.is_valid

    @property
    def is_remote(self) -> bool:
        return self.cvss.is_remote

    @property
    def is_application(self) -> bool:
        return self.component_class is ComponentClass.APPLICATION

    def affects(self, os_name: str) -> bool:
        return os_name in self.affected_os

    def affects_all(self, os_names: Sequence[str]) -> bool:
        """Whether the entry affects *every* OS in ``os_names``."""
        return all(name in self.affected_os for name in os_names)

    def affects_any(self, os_names: Sequence[str]) -> bool:
        return any(name in self.affected_os for name in os_names)

    def affects_release(self, os_name: str, version: str) -> bool:
        """Whether the entry affects the given (OS, release) pair.

        An entry with no recorded versions for the OS is treated as affecting
        all of its releases, matching the paper's aggregated (pessimistic)
        analysis; an entry with explicit versions affects only those.
        """
        if os_name not in self.affected_os:
            return False
        versions = tuple(self.affected_versions.get(os_name, ()))
        if not versions:
            return True
        target = Version(version)
        return any(Version(v).matches(target) or Version(v) == target for v in versions)

    def with_class(self, component_class: ComponentClass) -> "VulnerabilityEntry":
        """Return a copy with the component class set."""
        return replace(self, component_class=component_class)

    def with_validity(self, validity: ValidityStatus) -> "VulnerabilityEntry":
        """Return a copy with the validity status set."""
        return replace(self, validity=validity)
