"""Light-weight version handling for OS releases and CPE version fields.

The NVD encodes product versions as free-form dotted strings (``5.0``,
``2003``, ``6.2*``, ``8.04 LTS`` ...).  The paper's release-level analysis
(Section IV-D) only needs ordering and equality of releases of the same
product, so we implement a small, dependency-free comparable version type
rather than pulling in packaging machinery.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable, Tuple

_COMPONENT_RE = re.compile(r"(\d+|[a-zA-Z]+)")


def split_version(text: str) -> Tuple[object, ...]:
    """Split a version string into a tuple of comparable components.

    Numeric runs become integers and alphabetic runs become lower-case
    strings; punctuation is discarded.  An empty or wildcard version yields an
    empty tuple, which sorts before every concrete version.

    >>> split_version("5.0.1")
    (5, 0, 1)
    >>> split_version("6.2*")
    (6, 2)
    >>> split_version("8.04-LTS")
    (8, 4, 'lts')
    """
    if text is None:
        return ()
    text = text.strip()
    if text in ("", "*", "-"):
        return ()
    parts: list[object] = []
    for token in _COMPONENT_RE.findall(text):
        if token.isdigit():
            parts.append(int(token))
        else:
            parts.append(token.lower())
    return tuple(parts)


def _comparable(parts: Iterable[object]) -> Tuple[Tuple[int, object], ...]:
    """Make heterogeneous version tuples safely orderable.

    Integers sort before strings so that ``5.0 < 5.0a`` and mixed tuples never
    raise ``TypeError``.
    """
    out = []
    for part in parts:
        if isinstance(part, int):
            out.append((0, part))
        else:
            out.append((1, str(part)))
    return tuple(out)


@total_ordering
@dataclass(frozen=True)
class Version:
    """A comparable, hashable product version.

    >>> Version("4.0") < Version("5.0")
    True
    >>> Version("2003") == Version("2003")
    True
    """

    raw: str

    @property
    def parts(self) -> Tuple[object, ...]:
        return split_version(self.raw)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, str):
            other = Version(other)
        if not isinstance(other, Version):
            return NotImplemented
        return self.parts == other.parts

    def __lt__(self, other: object) -> bool:
        if isinstance(other, str):
            other = Version(other)
        if not isinstance(other, Version):
            return NotImplemented
        return _comparable(self.parts) < _comparable(other.parts)

    def __hash__(self) -> int:
        return hash(self.parts)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.raw

    @property
    def is_wildcard(self) -> bool:
        """True when the version matches any concrete version (``*`` / empty)."""
        return not self.parts

    def matches(self, other: "Version | str") -> bool:
        """Whether ``other`` falls under this version specification.

        A wildcard matches everything; otherwise ``other`` must share this
        version's components as a prefix (so ``5.0`` matches ``5.0.1``).
        """
        if isinstance(other, str):
            other = Version(other)
        if self.is_wildcard:
            return True
        mine, theirs = self.parts, other.parts
        return theirs[: len(mine)] == mine
