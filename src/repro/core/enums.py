"""Enumerations used throughout the reproduction.

The values mirror the vocabulary of the paper (Section III) and of the NVD /
CVSS v2 data the paper mines.
"""

from __future__ import annotations

import enum


class OSFamily(str, enum.Enum):
    """Operating-system family, as grouped by the paper (Section III)."""

    BSD = "BSD"
    SOLARIS = "Solaris"
    LINUX = "Linux"
    WINDOWS = "Windows"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ComponentClass(str, enum.Enum):
    """OS component class a vulnerability belongs to (paper Section III-B).

    The paper hand-classifies every valid vulnerability into exactly one of
    these four classes.
    """

    DRIVER = "Driver"
    KERNEL = "Kernel"
    SYSTEM_SOFTWARE = "System Software"
    APPLICATION = "Application"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_core_os(self) -> bool:
        """Whether this class survives the *Thin Server* filter.

        The Thin Server configuration removes Application vulnerabilities and
        keeps Driver, Kernel and System Software ones.
        """
        return self is not ComponentClass.APPLICATION


class AccessVector(str, enum.Enum):
    """CVSS v2 access vector (``CVSS_ACCESS_VECTOR`` in the NVD feeds)."""

    LOCAL = "LOCAL"
    ADJACENT_NETWORK = "ADJACENT_NETWORK"
    NETWORK = "NETWORK"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_remote(self) -> bool:
        """Whether the vulnerability is remotely exploitable.

        The paper's *Isolated Thin Server* filter keeps vulnerabilities whose
        access vector is ``Network`` or ``Adjacent Network``.
        """
        return self is not AccessVector.LOCAL

    @classmethod
    def from_cvss_token(cls, token: str) -> "AccessVector":
        """Parse the single-letter CVSS v2 vector token (``L``/``A``/``N``)."""
        mapping = {
            "L": cls.LOCAL,
            "A": cls.ADJACENT_NETWORK,
            "N": cls.NETWORK,
        }
        try:
            return mapping[token.upper()]
        except KeyError as exc:  # pragma: no cover - defensive
            raise ValueError(f"unknown CVSS access-vector token: {token!r}") from exc


class ValidityStatus(str, enum.Enum):
    """Manual data-cleaning status assigned in the paper (Section III-A).

    Entries whose descriptions are tagged Unknown or Unspecified, or that are
    flagged ``**DISPUTED**``, are excluded from the study.
    """

    VALID = "Valid"
    UNKNOWN = "Unknown"
    UNSPECIFIED = "Unspecified"
    DISPUTED = "Disputed"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_valid(self) -> bool:
        return self is ValidityStatus.VALID


class ServerConfiguration(str, enum.Enum):
    """Server configurations considered by the paper (Section IV-B).

    * ``FAT`` -- all vulnerabilities ("All" column of Table III).
    * ``THIN`` -- Application vulnerabilities removed ("No Applications").
    * ``ISOLATED_THIN`` -- Application vulnerabilities removed and only
      remotely-exploitable vulnerabilities kept ("No App. and No Local").
    """

    FAT = "Fat Server"
    THIN = "Thin Server"
    ISOLATED_THIN = "Isolated Thin Server"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def excludes_applications(self) -> bool:
        return self is not ServerConfiguration.FAT

    @property
    def excludes_local(self) -> bool:
        return self is ServerConfiguration.ISOLATED_THIN


class CPEPart(str, enum.Enum):
    """The ``part`` component of a CPE 2.2 name."""

    HARDWARE = "h"
    OPERATING_SYSTEM = "o"
    APPLICATION = "a"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value
