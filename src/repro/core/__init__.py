"""Core data model for the OS-diversity reproduction.

This package defines the vocabulary shared by every other subpackage:

* :mod:`repro.core.enums` -- closed enumerations (OS family, component class,
  access vector, validity status, server configuration).
* :mod:`repro.core.models` -- dataclasses for CVE entries, CVSS vectors, CPE
  products, operating systems and releases.
* :mod:`repro.core.constants` -- the 11-OS catalogue studied by the paper,
  vendor aliases, release timelines and the study period.
* :mod:`repro.core.versions` -- light-weight version parsing and comparison
  used for release-level analyses.
* :mod:`repro.core.exceptions` -- exception hierarchy.
"""

from repro.core.enums import (
    AccessVector,
    ComponentClass,
    OSFamily,
    ServerConfiguration,
    ValidityStatus,
)
from repro.core.exceptions import (
    CalibrationError,
    CPEError,
    CVSSError,
    DatabaseError,
    FeedParseError,
    ReproError,
    SelectionError,
)
from repro.core.models import (
    CPEName,
    CVSSVector,
    OperatingSystem,
    OSRelease,
    VulnerabilityEntry,
)
from repro.core.constants import (
    HISTORY_PERIOD,
    OBSERVED_PERIOD,
    OS_CATALOG,
    OS_NAMES,
    STUDY_PERIOD,
    get_os,
)

__all__ = [
    "AccessVector",
    "ComponentClass",
    "OSFamily",
    "ServerConfiguration",
    "ValidityStatus",
    "ReproError",
    "FeedParseError",
    "CPEError",
    "CVSSError",
    "DatabaseError",
    "CalibrationError",
    "SelectionError",
    "CPEName",
    "CVSSVector",
    "OperatingSystem",
    "OSRelease",
    "VulnerabilityEntry",
    "OS_CATALOG",
    "OS_NAMES",
    "STUDY_PERIOD",
    "HISTORY_PERIOD",
    "OBSERVED_PERIOD",
    "get_os",
]
