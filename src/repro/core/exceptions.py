"""Exception hierarchy for the reproduction library.

Every exception raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class FeedParseError(ReproError):
    """An NVD data feed (XML or JSON) could not be parsed."""


class CPEError(ReproError):
    """A Common Platform Enumeration name is malformed or unsupported."""


class CVSSError(ReproError):
    """A CVSS v2 vector string is malformed or incomplete."""


class DatabaseError(ReproError):
    """The vulnerability database rejected an operation."""


class CalibrationError(ReproError):
    """The synthetic-corpus solver could not satisfy the calibration targets."""


class ClassificationError(ReproError):
    """A vulnerability could not be assigned to a component class."""


class SelectionError(ReproError):
    """Replica-set selection was asked for an infeasible configuration."""


class SimulationError(ReproError):
    """The intrusion-tolerance simulator was configured inconsistently."""
