"""repro -- a reproduction of "OS Diversity for Intrusion Tolerance: Myth or Reality?".

Garcia, Bessani, Gashi, Neves and Obelheiro (DSN 2011) mined the NIST
National Vulnerability Database to measure how many vulnerabilities are
shared between 11 operating systems, and argued that OS diversity gives real
security gains to intrusion-tolerant (BFT) replicated systems.  This package
rebuilds that study end to end:

* :mod:`repro.nvd` -- NVD feed parsing (XML/JSON), CPE and CVSS handling;
* :mod:`repro.synthetic` -- a calibrated synthetic corpus standing in for the
  live NVD feeds (not downloadable in the offline reproduction environment);
* :mod:`repro.db` -- the SQL database of the paper's Figure 1 (SQLite),
  with incremental upserts and tombstones;
* :mod:`repro.snapshots` -- incremental feed ingestion: content-addressed
  dataset snapshots, the snapshot ledger, delta application, time travel
  and snapshot diffs;
* :mod:`repro.classify` -- component-class classification and the validity /
  server-configuration filters;
* :mod:`repro.analysis` -- every table and figure of the evaluation plus the
  replica-set selection strategies;
* :mod:`repro.itsys` -- an executable intrusion-tolerance model (replica
  groups, attacker, BFT service, Monte-Carlo comparison);
* :mod:`repro.runner` -- the parallel experiment-grid runner with a
  content-addressed, selectively-invalidated result cache;
* :mod:`repro.service` -- the long-lived asyncio diversity-query API
  server (``repro serve``): digest-keyed compile memoization, scoped
  ETags with 304 revalidation, background simulation jobs;
* :mod:`repro.reports` -- table/figure rendering and the experiment registry.

Quickstart
----------

>>> from repro import build_corpus, VulnerabilityDataset, PairAnalysis
>>> from repro.core import ServerConfiguration
>>> corpus = build_corpus()
>>> dataset = VulnerabilityDataset(corpus.entries)
>>> analysis = PairAnalysis(dataset)
>>> shared = analysis.shared_matrix(ServerConfiguration.ISOLATED_THIN)
>>> shared[("Debian", "Windows2003")]
0
"""

from repro.analysis import (
    KSetAnalysis,
    PairAnalysis,
    PeriodAnalysis,
    ReleaseDiversityAnalysis,
    ReplicaSetSelector,
    TemporalAnalysis,
    VulnerabilityDataset,
    summary_findings,
)
from repro.classify import ComponentClassifier, ValidityFilter
from repro.core import (
    AccessVector,
    ComponentClass,
    OSFamily,
    OS_NAMES,
    ServerConfiguration,
    ValidityStatus,
    VulnerabilityEntry,
)
from repro.db import IngestPipeline, VulnerabilityDatabase
from repro.itsys import BFTService, CompromiseSimulation, ReplicaGroup
from repro.reports import run_experiment
from repro.service import DiversityService, ServiceConfig, serve
from repro.snapshots import DeltaIngestPipeline, SnapshotStore
from repro.synthetic import SyntheticCorpus, build_corpus, evolve_corpus

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # corpus
    "build_corpus",
    "SyntheticCorpus",
    # core vocabulary
    "VulnerabilityEntry",
    "ComponentClass",
    "AccessVector",
    "ServerConfiguration",
    "ValidityStatus",
    "OSFamily",
    "OS_NAMES",
    # pipeline
    "VulnerabilityDatabase",
    "IngestPipeline",
    "ComponentClassifier",
    "ValidityFilter",
    # incremental ingestion and snapshots
    "DeltaIngestPipeline",
    "SnapshotStore",
    "evolve_corpus",
    # analyses
    "VulnerabilityDataset",
    "PairAnalysis",
    "TemporalAnalysis",
    "KSetAnalysis",
    "PeriodAnalysis",
    "ReleaseDiversityAnalysis",
    "ReplicaSetSelector",
    "summary_findings",
    "run_experiment",
    # intrusion tolerance
    "ReplicaGroup",
    "BFTService",
    "CompromiseSimulation",
    # serving layer
    "DiversityService",
    "ServiceConfig",
    "serve",
]
