#!/usr/bin/env python3
"""Check that relative links in the Markdown docs resolve to real files.

Scans the given Markdown files (default: README.md, CHANGES.md and
docs/*.md) for inline links and verifies that every non-external target
exists relative to the linking file. External links (http/https/mailto)
are not fetched -- this is an offline check.

Exit status 0 when every link resolves, 1 otherwise.  Used by CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown links: [text](target), ignoring images' leading "!".
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def iter_links(markdown: str):
    for match in LINK_PATTERN.finditer(markdown):
        yield match.group(1)


def check_file(path: Path) -> list[str]:
    failures = []
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(EXTERNAL_SCHEMES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            failures.append(f"{path}: broken link -> {target}")
    return failures


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    if argv:
        paths = [Path(arg) for arg in argv]
    else:
        paths = [root / "README.md", root / "CHANGES.md"]
        paths.extend(sorted((root / "docs").glob("*.md")))
    failures: list[str] = []
    checked = 0
    for path in paths:
        if not path.exists():
            failures.append(f"{path}: file not found")
            continue
        failures.extend(check_file(path))
        checked += 1
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"checked {checked} file(s): "
          f"{'OK' if not failures else f'{len(failures)} broken link(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
