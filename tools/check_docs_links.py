#!/usr/bin/env python3
"""Static checks for the Markdown docs: links, anchors, code refs, CLI flags.

Four audits over the given Markdown files (default: README.md, CHANGES.md,
docs/*.md and docs/api/*.md):

1. **Relative links** -- every non-external link target must exist relative
   to the linking file.
2. **Anchors** -- fragment links (``#section`` and ``file.md#section``) must
   name a real heading of the target file, using GitHub's slug rules.
3. **file:line code references** -- inline references like
   ``src/repro/cli.py:42`` must point at an existing file with at least
   that many lines, so refactors cannot leave the docs pointing into the
   void.
4. **CLI flag audit** (docs/cli.md only) -- every flag the ``repro``
   argument parser defines must be documented, and every ``--flag`` token
   the document mentions must exist in the parser; stale and undocumented
   flags both fail.

External links (http/https/mailto) are not fetched -- this is an offline
check.  Exit status 0 when every audit passes, 1 otherwise.  Used by CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links: [text](target), ignoring images' leading "!".
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")

#: Headings (``#`` .. ``######``), captured for anchor validation.
HEADING_PATTERN = re.compile(r"^(#{1,6})\s+(.*?)\s*$", re.MULTILINE)

#: ``path/to/file.py:123`` style code references in inline code spans.
CODE_REF_PATTERN = re.compile(
    r"`((?:src|tests|tools|benchmarks|examples|docs)/[\w./-]+):(\d+)`"
)

#: ``--flag`` tokens (for the CLI flag audit).
FLAG_PATTERN = re.compile(r"(?<![\w-])(--[a-z][\w-]*)")

#: Fenced code blocks -- excluded from *link* checks but kept for flags
#: (usage examples in fences are documentation too).
FENCE_PATTERN = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str, seen: dict) -> str:
    """GitHub's anchor slug for a heading text (with duplicate suffixes)."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    # GitHub maps every space to a hyphen without collapsing runs, so a
    # removed em dash between spaces yields a double hyphen.
    slug = text.strip().replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def heading_slugs(path: Path, cache: dict) -> set:
    """All anchor slugs a Markdown file defines."""
    if path not in cache:
        seen: dict = {}
        slugs = set()
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            cache[path] = set()
            return cache[path]
        text = FENCE_PATTERN.sub("", text)
        for match in HEADING_PATTERN.finditer(text):
            slugs.add(github_slug(match.group(2), seen))
        cache[path] = slugs
    return cache[path]


def check_links(path: Path, slug_cache: dict) -> list:
    """Audit 1 + 2: relative link targets and anchors."""
    failures = []
    text = FENCE_PATTERN.sub("", path.read_text(encoding="utf-8"))
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_SCHEMES):
            continue
        relative, _, fragment = target.partition("#")
        if relative:
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                failures.append(f"{path}: broken link -> {target}")
                continue
        else:
            resolved = path
        if fragment:
            if resolved.suffix != ".md" or resolved.is_dir():
                continue
            if fragment not in heading_slugs(resolved, slug_cache):
                failures.append(f"{path}: broken anchor -> {target}")
    return failures


def check_code_refs(path: Path) -> list:
    """Audit 3: ``file:line`` references point inside real files."""
    failures = []
    for match in CODE_REF_PATTERN.finditer(path.read_text(encoding="utf-8")):
        referenced = ROOT / match.group(1)
        line = int(match.group(2))
        if not referenced.is_file():
            failures.append(
                f"{path}: code reference to missing file -> {match.group(0)}"
            )
            continue
        lines = referenced.read_text(encoding="utf-8").count("\n") + 1
        if line < 1 or line > lines:
            failures.append(
                f"{path}: code reference past end of file "
                f"({referenced.name} has {lines} lines) -> {match.group(0)}"
            )
    return failures


def cli_flags() -> tuple:
    """(known flags, subcommand names) from the repro argument parser."""
    src = ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.cli import build_parser

    parser = build_parser()
    known = set()
    commands = set()

    def collect(target) -> None:
        for action in target._actions:
            known.update(
                option for option in action.option_strings
                if option.startswith("--")
            )
            if hasattr(action, "choices") and isinstance(action.choices, dict):
                for name, sub in action.choices.items():
                    commands.add(name)
                    collect(sub)

    collect(parser)
    return known, commands


def check_cli_doc(path: Path) -> list:
    """Audit 4: docs/cli.md covers exactly the flags the parser defines."""
    failures = []
    text = path.read_text(encoding="utf-8")
    documented = set(FLAG_PATTERN.findall(text))
    known, commands = cli_flags()
    for flag in sorted(documented - known):
        failures.append(f"{path}: documents unknown flag {flag}")
    for flag in sorted(known - documented - {"--help"}):
        failures.append(f"{path}: flag {flag} is undocumented")
    for command in sorted(commands):
        if f"`{command}`" not in text:
            failures.append(f"{path}: subcommand {command} is undocumented")
    return failures


def main(argv: list) -> int:
    if argv:
        paths = [Path(arg) for arg in argv]
    else:
        paths = [ROOT / "README.md", ROOT / "CHANGES.md"]
        paths.extend(sorted((ROOT / "docs").glob("*.md")))
        paths.extend(sorted((ROOT / "docs" / "api").glob("*.md")))
    failures: list = []
    checked = 0
    slug_cache: dict = {}
    for path in paths:
        if not path.exists():
            failures.append(f"{path}: file not found")
            continue
        failures.extend(check_links(path, slug_cache))
        failures.extend(check_code_refs(path))
        if path.resolve() == (ROOT / "docs" / "cli.md").resolve():
            failures.extend(check_cli_doc(path))
        checked += 1
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"checked {checked} file(s): "
          f"{'OK' if not failures else f'{len(failures)} problem(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
