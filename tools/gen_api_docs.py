#!/usr/bin/env python3
"""Generate (and drift-check) the API reference under docs/api/.

Walks every module of the ``repro`` package, imports it, and renders one
Markdown page per subpackage (plus ``repro.md`` for the top-level modules
and an index).  Only public API is documented: module docstrings, public
classes with their public methods/properties, and public module-level
functions, each with its signature and the first paragraph of its
docstring.

The output is deterministic (members are listed in source order, pages and
the index in alphabetical order), so the rendered files can be committed
and CI can fail when code and docs drift apart::

    PYTHONPATH=src python tools/gen_api_docs.py           # (re)write docs/api/
    PYTHONPATH=src python tools/gen_api_docs.py --check   # fail on drift

No third-party documentation tool is required -- the generator is stdlib
only, which keeps it runnable in the offline reproduction environment.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
API_DIR = ROOT / "docs" / "api"
PACKAGE = "repro"

#: Modules that are implementation entry points rather than API surface.
SKIPPED_MODULES = {"repro.__main__"}


def _is_skipped(name: str) -> bool:
    return name in SKIPPED_MODULES or name.endswith(".__main__")

#: Cap for rendered signatures; long default reprs are elided beyond this.
MAX_SIGNATURE = 110


def discover_modules() -> List[str]:
    """Every importable module name under the package, sorted."""
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))
    package = importlib.import_module(PACKAGE)
    names = [PACKAGE]
    for info in pkgutil.walk_packages(package.__path__, prefix=f"{PACKAGE}."):
        if not _is_skipped(info.name):
            names.append(info.name)
    return sorted(names)


def first_paragraph(obj) -> str:
    """The first docstring paragraph, joined onto single lines."""
    doc = inspect.getdoc(obj) or ""
    paragraph = doc.split("\n\n", 1)[0].strip()
    return " ".join(line.strip() for line in paragraph.splitlines())


def render_signature(name: str, obj) -> str:
    """``name(params)`` with long parameter lists elided."""
    try:
        signature = str(inspect.signature(obj))
    except (TypeError, ValueError):
        signature = "(...)"
    if len(name + signature) > MAX_SIGNATURE:
        signature = signature[: MAX_SIGNATURE - len(name) - 3] + "...)"
    return f"{name}{signature}"


def source_line(obj) -> int:
    try:
        return inspect.getsourcelines(obj)[1]
    except (OSError, TypeError):
        return 0


def public_members(module) -> Tuple[List[tuple], List[tuple]]:
    """(classes, functions) defined by the module itself, in source order."""
    classes, functions = [], []
    for name, obj in vars(module).items():
        if name.startswith("_") or getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(obj):
            classes.append((source_line(obj), name, obj))
        elif inspect.isfunction(obj):
            functions.append((source_line(obj), name, obj))
    return sorted(classes), sorted(functions)


def class_members(cls) -> List[tuple]:
    """Public methods and properties defined directly on the class."""
    members = []
    for name, obj in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(obj, property):
            members.append((source_line(obj.fget) if obj.fget else 0,
                            name, obj, "property"))
        elif isinstance(obj, staticmethod):
            members.append((source_line(obj.__func__), name, obj.__func__,
                            "staticmethod"))
        elif isinstance(obj, classmethod):
            members.append((source_line(obj.__func__), name, obj.__func__,
                            "classmethod"))
        elif inspect.isfunction(obj):
            members.append((source_line(obj), name, obj, "method"))
    return sorted(members)


def render_module(module_name: str) -> List[str]:
    """Markdown lines documenting one module."""
    module = importlib.import_module(module_name)
    lines = [f"## `{module_name}`", ""]
    summary = first_paragraph(module)
    if summary:
        lines += [summary, ""]
    classes, functions = public_members(module)
    for _, name, cls in classes:
        lines.append(f"### class `{render_signature(name, cls)}`")
        lines.append("")
        doc = first_paragraph(cls)
        if doc:
            lines += [doc, ""]
        for _, member_name, member, kind in class_members(cls):
            if kind == "property":
                doc = first_paragraph(member)
                lines.append(f"- `{member_name}` *(property)*"
                             + (f" — {doc}" if doc else ""))
            else:
                doc = first_paragraph(member)
                label = f" *({kind})*" if kind != "method" else ""
                lines.append(
                    f"- `{render_signature(member_name, member)}`{label}"
                    + (f" — {doc}" if doc else "")
                )
        if class_members(cls):
            lines.append("")
    for _, name, function in functions:
        lines.append(f"### `{render_signature(name, function)}`")
        lines.append("")
        doc = first_paragraph(function)
        if doc:
            lines += [doc, ""]
    return lines


def page_name(module_name: str) -> str:
    """The docs/api page a module belongs to (grouped by subpackage)."""
    parts = module_name.split(".")
    if len(parts) == 1:
        return f"{PACKAGE}.md"
    return f"{parts[0]}.{parts[1]}.md"


def build_pages() -> Dict[str, str]:
    """All rendered pages (filename -> content), including the index."""
    grouped: Dict[str, List[str]] = {}
    for module_name in discover_modules():
        grouped.setdefault(page_name(module_name), []).append(module_name)

    pages: Dict[str, str] = {}
    index_rows: List[str] = []
    for filename in sorted(grouped):
        modules = grouped[filename]
        title = filename[: -len(".md")]
        lines = [
            f"# `{title}` API reference",
            "",
            "<!-- Generated by tools/gen_api_docs.py; do not edit by hand. -->",
            "",
        ]
        for module_name in modules:
            lines.extend(render_module(module_name))
        pages[filename] = "\n".join(lines).rstrip() + "\n"
        hook = first_paragraph(importlib.import_module(modules[0]))
        short = hook.split(". ")[0].rstrip(".") + "." if hook else ""
        index_rows.append(f"| [`{title}`]({filename}) | {short} |")

    index = [
        "# API reference",
        "",
        "<!-- Generated by tools/gen_api_docs.py; do not edit by hand. -->",
        "",
        "One page per subpackage, regenerated by `tools/gen_api_docs.py`",
        "(CI fails when these files drift from the code — regenerate with",
        "`PYTHONPATH=src python tools/gen_api_docs.py`).",
        "",
        "| page | summary |",
        "| --- | --- |",
        *index_rows,
    ]
    pages["README.md"] = "\n".join(index) + "\n"
    return pages


def write_pages(pages: Dict[str, str]) -> List[Path]:
    API_DIR.mkdir(parents=True, exist_ok=True)
    written = []
    for filename, content in sorted(pages.items()):
        path = API_DIR / filename
        path.write_text(content, encoding="utf-8")
        written.append(path)
    # Remove stale pages for subpackages that no longer exist.
    for path in API_DIR.glob("*.md"):
        if path.name not in pages:
            path.unlink()
    return written


def check_pages(pages: Dict[str, str]) -> List[str]:
    """Mismatches between the rendered pages and docs/api on disk."""
    problems = []
    on_disk = {path.name for path in API_DIR.glob("*.md")} if API_DIR.exists() else set()
    for filename, content in pages.items():
        path = API_DIR / filename
        if not path.exists():
            problems.append(f"missing page: docs/api/{filename}")
        elif path.read_text(encoding="utf-8") != content:
            problems.append(f"stale page: docs/api/{filename}")
    for filename in sorted(on_disk - set(pages)):
        problems.append(f"orphaned page: docs/api/{filename}")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--check", action="store_true",
        help="verify docs/api matches the code instead of rewriting it",
    )
    args = parser.parse_args(argv)
    pages = build_pages()
    if args.check:
        problems = check_pages(pages)
        for problem in problems:
            print(problem, file=sys.stderr)
        if problems:
            print(
                "API docs drifted; regenerate with "
                "`PYTHONPATH=src python tools/gen_api_docs.py`",
                file=sys.stderr,
            )
            return 1
        print(f"docs/api is up to date ({len(pages)} pages)")
        return 0
    written = write_pages(pages)
    print(f"wrote {len(written)} pages to {API_DIR.relative_to(ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
