#!/usr/bin/env python3
"""Monte-Carlo attack campaigns against homogeneous and diverse BFT groups.

The paper's motivation made executable: an attacker weaponises vulnerabilities
from the corpus (remote, non-application flaws -- the Isolated Thin Server
attack surface) and fires them at a replicated service.  Safety of a BFT
service is lost once more than ``f`` of its ``3f+1`` replicas are
compromised.  We compare:

* four identical replicas (a single exploit takes out everything);
* the paper's Set1 = {Windows 2003, Solaris, Debian, OpenBSD};
* the budget set Set4 = {OpenBSD, NetBSD, Debian, RedHat};
* Set1 with periodic proactive recovery.

Run with::

    python examples/attack_simulation.py
"""

from repro import BFTService, CompromiseSimulation, ReplicaGroup, build_corpus
from repro.core.constants import FIGURE3_CONFIGURATIONS
from repro.itsys.attacker import Attacker


def single_campaign_story(corpus) -> None:
    """One deterministic campaign, narrated step by step."""
    print("== a single campaign against Set1 ==")
    attacker = Attacker(corpus.valid_entries, seed=2011)
    group = ReplicaGroup.diverse(FIGURE3_CONFIGURATIONS["Set1"])
    service = BFTService(group)
    exploits = attacker.poisson_campaign(rate=1.0, horizon=8.0, targeted_os=group.os_names)
    timeline = service.run_campaign(exploits, request_interval=1.0, horizon=8.0)
    print(f"  exploits launched           : {len(exploits)}")
    print(f"  replicas compromised        : {group.compromised_count()} of {group.n}")
    print(f"  requests executed            : {len(timeline.executed)}")
    print(f"  safety violated at           : {timeline.safety_violation_time}")
    for time, cve_id, count in timeline.compromised_events:
        print(f"    t={time:5.2f}  {cve_id}  compromised {count} replica(s)")
    print()


def single_exploit_comparison(corpus) -> None:
    """How often can ONE exploit (e.g. a 0-day) defeat the whole group?"""
    print("== single-exploit (0-day) analysis over the whole attack surface ==")
    simulation = CompromiseSimulation(corpus.valid_entries)
    configurations = {
        "4 x Debian (homogeneous)": ("Debian",) * 4,
        "Set1 (Win2003/Solaris/Debian/OpenBSD)": FIGURE3_CONFIGURATIONS["Set1"],
        "Set4 (OpenBSD/NetBSD/Debian/RedHat)": FIGURE3_CONFIGURATIONS["Set4"],
    }
    for name, os_names in configurations.items():
        analysis = simulation.single_exploit_analysis(name, os_names)
        print(
            f"  {name:42s} P[one exploit defeats the group]="
            f"{analysis.single_attack_defeat_probability:5.2f}   "
            f"mean replicas hit per exploit={analysis.mean_replicas_per_exploit:4.2f}"
        )
    print()


def monte_carlo_comparison(corpus) -> None:
    print("== Monte-Carlo comparison (200 campaigns each) ==")
    simulation = CompromiseSimulation(corpus.valid_entries, seed=7)
    configurations = {
        "4 x Debian (homogeneous)": ("Debian",) * 4,
        "Set1 (Win2003/Solaris/Debian/OpenBSD)": FIGURE3_CONFIGURATIONS["Set1"],
        "Set4 (OpenBSD/NetBSD/Debian/RedHat)": FIGURE3_CONFIGURATIONS["Set4"],
    }
    for result in simulation.compare(configurations, runs=200, exploit_rate=1.0, horizon=5.0):
        print(f"  {result.name:42s} P[>f compromised]={result.safety_violation_probability:5.2f} "
              f"mean compromised={result.mean_compromised:4.2f}")
    print()

    print("== the same, with proactive recovery every 2 time units ==")
    for result in simulation.compare(
        configurations, runs=200, exploit_rate=1.0, horizon=10.0, recovery_interval=2.0
    ):
        print(f"  {result.name:42s} P[>f compromised]={result.safety_violation_probability:5.2f} "
              f"mean compromised={result.mean_compromised:4.2f}")
    print()

    gain = simulation.diversity_gain(
        "Debian", FIGURE3_CONFIGURATIONS["Set1"], runs=200, exploit_rate=1.0, horizon=5.0
    )
    if gain is None:
        print("the homogeneous baseline had no safety violations -- nothing to reduce")
    else:
        print(f"relative reduction of safety violations from diversity: {100 * gain:.0f}%")


def scenario_tour(corpus) -> None:
    """The scenario knobs beyond the paper's Poisson attacker."""
    print("\n== recovery-interval sweep (Set1, aging attacker, smart opening) ==")
    simulation = CompromiseSimulation(corpus.valid_entries, seed=7)
    sweep = simulation.recovery_sweep(
        "Set1",
        FIGURE3_CONFIGURATIONS["Set1"],
        intervals=[None, 2.0, 0.5],
        runs=200,
        exploit_rate=1.0,
        horizon=8.0,
        arrival="aging",
        shape=1.8,
        smart=True,
    )
    for result in sweep.values():
        low, high = result.safety_violation_ci
        print(f"  {result.name:24s} P[>f compromised]={result.safety_violation_probability:5.2f} "
              f"(95% CI {low:.2f}-{high:.2f})  peak compromised={result.mean_compromised:4.2f}")


def main() -> None:
    corpus = build_corpus()
    single_campaign_story(corpus)
    single_exploit_comparison(corpus)
    monte_carlo_comparison(corpus)
    scenario_tour(corpus)


if __name__ == "__main__":
    main()
