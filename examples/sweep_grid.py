#!/usr/bin/env python3
"""Parameter-grid sweeps with the parallel runner and the result cache.

The paper's evaluation is a family of sweeps: how does the safety-violation
probability move as you vary the replica configuration, the quorum model,
the proactive-recovery interval and the adversary?  This example declares
such a sweep as an :class:`~repro.runner.ExperimentGrid`, runs it twice --
once serially, once across a process pool -- to show the results are
bit-for-bit identical, and then reruns it against a warm cache to show the
second pass does no simulation work at all.

Run with::

    python examples/sweep_grid.py
"""

import tempfile
import time

from repro import build_corpus
from repro.core.constants import FIGURE3_CONFIGURATIONS
from repro.runner import ArrivalSpec, ExperimentGrid, GridRunner, ResultCache


def build_grid() -> ExperimentGrid:
    """A 16-cell grid: 2 configurations x 2 quorums x 2 recoveries x 2 arrivals."""
    return ExperimentGrid(
        configurations={
            "homogeneous-Debian": ("Debian",) * 4,
            "Set1": FIGURE3_CONFIGURATIONS["Set1"],
        },
        quorum_models=("3f+1", "2f+1"),
        recovery_intervals=(None, 2.0),
        arrivals=(ArrivalSpec("poisson"), ArrivalSpec("aging", 1.8)),
        adversaries=("standard",),
        runs=100,
        exploit_rate=1.0,
        horizon=5.0,
    )


def main() -> None:
    corpus = build_corpus()
    entries = corpus.valid_entries
    grid = build_grid()
    print(f"grid: {len(grid)} cells, {grid.runs} runs each\n")

    print("== serial vs parallel: identical results ==")
    serial = GridRunner(entries, seed=2011, workers=1).run(grid)
    parallel = GridRunner(entries, seed=2011, workers=2).run(grid)
    assert serial.results() == parallel.results()
    print(f"workers=1: {serial.elapsed_seconds:.2f}s   "
          f"workers=2: {parallel.elapsed_seconds:.2f}s   "
          f"results bit-for-bit identical\n")
    for cell in serial.cells[:4]:
        print(f"  {cell.result.summary()}")
    print(f"  ... and {len(serial.cells) - 4} more cells\n")

    print("== warm cache: zero simulation calls ==")
    with tempfile.TemporaryDirectory() as cache_dir:
        cold_start = time.perf_counter()
        cold = GridRunner(
            entries, seed=2011, workers=2, cache=ResultCache(cache_dir)
        ).run(grid)
        cold_seconds = time.perf_counter() - cold_start
        warm_start = time.perf_counter()
        warm = GridRunner(
            entries, seed=2011, workers=1, cache=ResultCache(cache_dir)
        ).run(grid)
        warm_seconds = time.perf_counter() - warm_start
        assert warm.results() == cold.results()
        print(f"cold sweep: {cold_seconds:.2f}s "
              f"({cold.simulated_cells} cells simulated)")
        print(f"warm sweep: {warm_seconds:.3f}s "
              f"({warm.cached_cells} cells from cache, "
              f"{warm.simulated_cells} simulated)")

    print("\n== what the sweep says ==")
    best = min(
        serial.cells, key=lambda cell: cell.result.safety_violation_probability
    )
    worst = max(
        serial.cells, key=lambda cell: cell.result.safety_violation_probability
    )
    print(f"most robust cell:  {best.result.summary()}")
    print(f"most fragile cell: {worst.result.summary()}")


if __name__ == "__main__":
    main()
