#!/usr/bin/env python3
"""Quickstart: build the corpus, run the core analyses, print the findings.

This walks through the library in the same order as the paper:

1. build the calibrated vulnerability corpus (the stand-in for the NVD feeds);
2. look at how vulnerabilities distribute over OSes and component classes;
3. count shared vulnerabilities between OS pairs under the three server
   configurations;
4. print the summary findings of Section IV-E.

Run with::

    python examples/quickstart.py
"""

from repro import (
    PairAnalysis,
    ServerConfiguration,
    VulnerabilityDataset,
    build_corpus,
    summary_findings,
)
from repro.reports.tables import table1, table2


def main() -> None:
    # 1. The corpus: ~1.9k valid vulnerabilities over 11 OSes, 1994-2010.
    corpus = build_corpus()
    dataset = VulnerabilityDataset(corpus.entries)
    print(f"corpus: {len(corpus.entries)} entries "
          f"({len(corpus.valid_entries)} valid, {len(corpus.excluded_entries)} excluded)\n")

    # 2. Table I and Table II, recomputed from the corpus.
    print(table1(dataset).text, "\n")
    print(table2(dataset).text, "\n")

    # 3. Shared vulnerabilities between a few interesting pairs.
    analysis = PairAnalysis(dataset)
    pairs_of_interest = [
        ("Windows2000", "Windows2003"),   # same family: many shared flaws
        ("Debian", "RedHat"),             # same family, customised kernels
        ("Debian", "Windows2003"),        # cross family: none shared
        ("OpenBSD", "FreeBSD"),           # BSD code reuse
    ]
    print("shared vulnerabilities (All / No Applications / Isolated Thin):")
    for os_a, os_b in pairs_of_interest:
        row = []
        for configuration in ServerConfiguration:
            row.append(analysis.analyze_pair(os_a, os_b, configuration).shared)
        print(f"  {os_a:12s} - {os_b:12s}  {row[0]:4d} / {row[1]:4d} / {row[2]:4d}")
    print()

    # 4. The headline findings of the study.
    findings = summary_findings(dataset.valid())
    print("summary findings (Section IV-E):")
    print(f"  average reduction Fat -> Isolated Thin : {findings.fat_to_isolated_reduction_pct:.1f}%")
    print(f"  pairs sharing at most one vulnerability: {findings.pairs_with_at_most_one_pct:.0f}%")
    print(f"  driver share of all vulnerabilities    : {findings.driver_share_pct:.1f}%")
    print(f"  most diverse 4-OS group (history data) : {', '.join(findings.top3_four_os_groups[0])}")


if __name__ == "__main__":
    main()
