#!/usr/bin/env python3
"""Release-level diversity (Section IV-D) and the feed/database pipeline.

Shows two things the other examples do not:

1. running the full collection pipeline the way the paper did -- serialise
   the corpus as NVD-style XML feeds, parse them back, normalise products and
   load an SQLite database with the schema of Figure 1, then query it in SQL;
2. the release-level analysis of Table VI: even the most-overlapping pair of
   Linux distributions (Debian/RedHat) has almost no common vulnerabilities
   once specific releases are considered.

Run with::

    python examples/release_diversity.py
"""

import tempfile
from pathlib import Path

from repro import ReleaseDiversityAnalysis, VulnerabilityDataset, build_corpus
from repro.db import queries
from repro.db.ingest import IngestPipeline
from repro.reports.tables import table6


def pipeline_demo(corpus) -> VulnerabilityDataset:
    print("== feeds -> parser -> normaliser -> SQLite (paper Section III) ==")
    with tempfile.TemporaryDirectory() as tmp:
        feed_paths = corpus.write_xml_feeds(Path(tmp))
        pipeline = IngestPipeline()
        report = pipeline.ingest_xml_feeds(feed_paths)
        print(f"  feeds written               : {len(feed_paths)}")
        print(f"  entries parsed               : {report.parsed_entries}")
        print(f"  entries ingested             : {report.ingested_entries}")
        print(f"  valid / excluded             : {report.valid_entries} / {report.excluded_entries}")
        print(f"  distinct valid (SQL)        : {queries.distinct_valid_count(pipeline.database)}")
        widest = queries.shared_by_at_least(pipeline.database, 5)
        print(f"  vulnerabilities in >=5 OSes : {len(widest)} (e.g. {', '.join(widest[:3])})")
        dataset = VulnerabilityDataset(pipeline.database.load_entries(only_valid=True))
        pipeline.database.close()
    print()
    return dataset


def release_demo(dataset: VulnerabilityDataset) -> None:
    print("== release-level diversity (Table VI) ==")
    print(table6(dataset).text)
    print()
    analysis = ReleaseDiversityAnalysis(dataset)
    releases = {"Debian": ["2.1", "3.0", "4.0"], "RedHat": ["6.2*", "4.0", "5.0"]}
    distribution_level, release_level = analysis.effective_diversity_gain(
        "Debian", "RedHat", releases
    )
    print(f"Debian-RedHat shared vulnerabilities, whole distributions : {distribution_level}")
    print(f"Debian-RedHat shared vulnerabilities, best release pairing: {release_level}")
    disjoint = analysis.disjoint_release_pairs(releases)
    print(f"release pairs with zero shared vulnerabilities            : {len(disjoint)} of 15")


def main() -> None:
    corpus = build_corpus()
    dataset = pipeline_demo(corpus)
    release_demo(dataset)


if __name__ == "__main__":
    main()
