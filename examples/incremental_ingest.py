"""Incremental ingestion: deltas, snapshots, time travel, cheap re-sweeps.

Walks the full lifecycle of an evolving corpus:

1. full-ingest the synthetic corpus into a database and commit snapshot #1;
2. fabricate an NVD-style *modified* feed (1% republished entries plus two
   withdrawals) and apply it as a delta -> snapshot #2;
3. re-apply the same delta to show idempotence (no new snapshot);
4. diff the snapshots: changed CVEs and the affected-OS blast radius;
5. time-travel back to snapshot #1 and verify the digest matches;
6. run the same cached sweep before and after the delta, showing that only
   cells whose OSes the diff names are re-simulated.

Run with ``PYTHONPATH=src python examples/incremental_ingest.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.db.database import VulnerabilityDatabase
from repro.db.ingest import IngestPipeline
from repro.runner import ExperimentGrid, GridRunner, ResultCache
from repro.snapshots import DeltaIngestPipeline, SnapshotStore
from repro.synthetic import build_corpus, evolve_corpus


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-incremental-"))
    corpus = build_corpus()

    print("== 1. full ingest -> snapshot #1")
    database = VulnerabilityDatabase(workdir / "corpus.db")
    pipeline = IngestPipeline(database=database)
    pipeline.ingest_raw(corpus.to_raw_feed_entries())
    store = SnapshotStore(database)
    base = store.commit(source="synthetic corpus")
    print(f"   {base.summary()}")

    print("\n== 2. apply a 1% modified feed -> snapshot #2")
    delta = evolve_corpus(corpus, fraction=0.01, seed=42, rejections=2)
    feed = delta.write_feed(workdir / "modified.xml")
    incremental = DeltaIngestPipeline(pipeline, store)
    report = incremental.apply_feed(feed, source="modified.xml")
    print(f"   {report.summary()}")

    print("\n== 3. re-apply the same delta (idempotent)")
    replay = incremental.apply_feed(feed, source="replay")
    print(f"   {replay.summary()}")
    assert replay.snapshot.digest == report.snapshot.digest
    print(f"   ledger unchanged: head stays {replay.snapshot.short_digest}")

    print("\n== 4. snapshot diff (blast radius)")
    diff = store.diff(base.snapshot_id, report.snapshot.snapshot_id)
    print("   " + diff.summary().replace("\n", "\n   "))

    print("\n== 5. time travel")
    then = store.dataset_at(base.snapshot_id)
    now = store.dataset_at(report.snapshot.snapshot_id)
    print(f"   dataset_at(#1): {len(then)} entries, digest {then.digest()[:12]}")
    print(f"   dataset_at(#2): {len(now)} entries, digest {now.digest()[:12]}")
    assert then.digest() == base.digest

    print("\n== 6. selective cache invalidation")
    grid = ExperimentGrid(
        configurations={
            "Set1": ("Windows2003", "Solaris", "Debian", "OpenBSD"),
            "windows-only": ("Windows2000", "Windows2003", "Windows2008",
                             "Windows2000"),
        },
        runs=40,
        horizon=2.0,
    )
    cache = ResultCache(workdir / "cache")
    cold = GridRunner(
        [entry for entry in then if entry.is_valid], seed=11, cache=cache
    ).run(grid)
    warm = GridRunner(
        [entry for entry in now if entry.is_valid], seed=11, cache=cache
    ).run(grid)
    print(f"   cold sweep: {cold.simulated_cells} simulated, "
          f"{cold.cached_cells} cached")
    for cell in warm.cells:
        touched = diff.touches_group(cell.cell.os_names)
        state = "cached " if cell.cached else "re-ran "
        print(f"   warm sweep: {state} {cell.cell.configuration:14s} "
              f"(diff touches it: {touched})")
        if not touched:
            assert cell.cached, "untouched cells must be served from cache"

    print(f"\nartifacts in {workdir}")


if __name__ == "__main__":
    main()
