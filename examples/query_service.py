"""Query the diversity API server: endpoints, ETags, background jobs.

Starts the ``repro serve`` application in-process on a free port (the same
server ``python -m repro serve`` runs), then walks a planner's session:

1. ``GET /healthz`` -- version, dataset digest, uptime;
2. ``GET /v1/shared`` -- vulnerabilities common to a candidate replica set;
3. revalidate the same query with ``If-None-Match`` -> ``304`` (no body);
4. ``GET /v1/selection`` -- the branch-and-bound best replica groups;
5. ``POST /v1/simulations`` -> ``202`` + job id, poll ``GET /v1/jobs/<id>``
   until the Monte-Carlo sweep finishes in the background;
6. stop the server (graceful drain).

Run with ``PYTHONPATH=src python examples/query_service.py``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.service import (
    DiversityService,
    ServiceConfig,
    ServiceServer,
    StaticDatasetProvider,
)
from repro.synthetic import build_corpus


def get(base: str, path: str, etag: str | None = None):
    headers = {"If-None-Match": etag} if etag else {}
    request = urllib.request.Request(base + path, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        # urllib treats every non-2xx as an error -- including the 304
        # revalidation this example demonstrates.
        return error.code, dict(error.headers), error.read()


def main() -> None:
    corpus = build_corpus()
    app = DiversityService(
        ServiceConfig(),
        StaticDatasetProvider(corpus.entries, label="synthetic corpus"),
    )
    server = ServiceServer(app)
    base = server.start()
    print(f"== server listening at {base}")

    print("\n== 1. GET /healthz")
    _status, _headers, body = get(base, "/healthz")
    health = json.loads(body)
    print(f"   repro {health['version']}, dataset {health['dataset']['digest'][:12]} "
          f"({health['dataset']['entries']} entries), "
          f"up {health['uptime_seconds']}s")

    print("\n== 2. GET /v1/shared (Set1's members)")
    path = "/v1/shared?os=Windows2003,Solaris,Debian,OpenBSD"
    status, headers, body = get(base, path)
    shared = json.loads(body)
    etag = headers["ETag"]
    print(f"   {status}: {shared['shared_count']} shared vulnerabilities "
          f"under the {shared['configuration']} configuration")
    print(f"   ETag {etag}")

    print("\n== 3. revalidate with If-None-Match")
    status, _headers, body = get(base, path, etag=etag)
    print(f"   {status} Not Modified ({len(body)} body bytes)")

    print("\n== 4. GET /v1/selection (best 4-OS groups, branch and bound)")
    _status, _headers, body = get(base, "/v1/selection?n=4&top=3")
    for group in json.loads(body)["groups"]:
        print(f"   {', '.join(group['os_names']):45s} "
              f"shared={group['pairwise_shared']}")

    print("\n== 5. POST /v1/simulations -> 202, then poll the job")
    request_body = json.dumps({
        "configurations": {
            "Set1": ["Windows2003", "Solaris", "Debian", "OpenBSD"],
            "homogeneous": ["Debian", "Debian", "Debian", "Debian"],
        },
        "runs": 60,
        "horizon": 3.0,
        "seed": 11,
    }).encode("utf-8")
    request = urllib.request.Request(
        base + "/v1/simulations", data=request_body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        job = json.loads(response.read())
        print(f"   {response.status} Accepted -> job {job['job_id']} "
              f"({job['cells']} cells x {job['runs_per_cell']} runs)")
    while True:
        _status, _headers, body = get(base, f"/v1/jobs/{job['job_id']}")
        payload = json.loads(body)
        if payload["state"] in ("done", "failed"):
            break
        time.sleep(0.1)
    assert payload["state"] == "done", payload.get("error")
    for cell in payload["result"]["cells"]:
        result = cell["result"]
        print(f"   {cell['cell_id']:55s} "
              f"P[violation]={result['safety_violation_probability']:.2f}")

    print("\n== 6. graceful stop")
    drained = server.stop()
    print(f"   drained cleanly: {drained}")


if __name__ == "__main__":
    main()
