#!/usr/bin/env python3
"""Selecting operating systems for an intrusion-tolerant replica group.

Reproduces the workflow of Section IV-C: use the *history* period
(1994--2005) to choose replica groups, then check on the *observed* period
(2006--2010) how many vulnerabilities would actually have hit more than one
replica.  Also shows sizing for different fault thresholds (3f+1 and 2f+1).

Run with::

    python examples/replica_selection.py
"""

from repro import PeriodAnalysis, ReplicaSetSelector, VulnerabilityDataset, build_corpus
from repro.analysis.selection import max_tolerated_faults, replicas_needed
from repro.core.constants import TABLE5_OSES


def main() -> None:
    dataset = VulnerabilityDataset(build_corpus().entries)
    periods = PeriodAnalysis(dataset)

    # Selection uses only what an operator in 2005 could have known.
    selector = ReplicaSetSelector(
        pair_matrix=periods.history_pair_matrix(), candidates=TABLE5_OSES
    )

    print("== four-replica groups (f = 1, 3f+1) ranked on 1994-2005 data ==")
    for result in selector.exhaustive(4, top=5):
        evaluation = periods.evaluate_configuration("candidate", result.os_names)
        print(
            f"  {', '.join(result.os_names):55s} "
            f"history shared={result.pairwise_shared:3d}   "
            f"observed 2006-2010={evaluation.observed_count:2d}"
        )

    print("\n== the non-diverse baseline ==")
    debian = periods.evaluate_configuration("Debian x4", ("Debian",))
    print(
        f"  four identical Debian replicas: {debian.history_count} history / "
        f"{debian.observed_count} observed vulnerabilities hit every replica at once"
    )

    print("\n== strategy comparison for n = 4 ==")
    for name, result in (
        ("exhaustive", selector.exhaustive(4, top=1)[0]),
        ("greedy", selector.greedy(4)),
        ("graph-based", selector.graph_based(4)),
    ):
        print(f"  {name:12s} -> {', '.join(result.os_names)}  (score {result.pairwise_shared})")

    print("\n== how many faults can the 11-OS catalogue tolerate? ==")
    for quorum_model in ("3f+1", "2f+1"):
        f = max_tolerated_faults(len(TABLE5_OSES) + 3, quorum_model)  # all 11 OSes
        print(f"  {quorum_model}: up to f={f} with 11 distinct OSes "
              f"(needs {replicas_needed(f, quorum_model)} replicas)")

    print("\n== a seven-OS group for f = 2 (3f+1) ==")
    result = selector.best_for_faults(2, strategy="greedy")
    print(f"  {', '.join(result.os_names)}  (pairwise shared={result.pairwise_shared})")


if __name__ == "__main__":
    main()
