#!/usr/bin/env python3
"""Regenerate every table and figure of the paper and write them to disk.

Runs the complete experiment registry against the calibrated corpus, prints a
paper-vs-measured comparison for each experiment, and exports the rendered
tables plus the figure data series as text/CSV files under
``examples/output/`` (the material summarised by EXPERIMENTS.md).

Run with::

    python examples/full_reproduction.py [output-directory]
"""

import sys
from pathlib import Path

from repro import VulnerabilityDataset, build_corpus
from repro.reports.experiments import EXPERIMENTS
from repro.reports.export import to_csv
from repro.reports.figures import figure2, figure3
from repro.reports.tables import (
    ksets_summary,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent / "output"
    output_dir.mkdir(parents=True, exist_ok=True)

    corpus = build_corpus()
    dataset = VulnerabilityDataset(corpus.entries)

    print(f"running {len(EXPERIMENTS)} experiments; writing artefacts to {output_dir}\n")
    for experiment in EXPERIMENTS.values():
        result = experiment.run(dataset)
        print(f"== {result.experiment_id}: {result.description}")
        for key, measured in result.measured.items():
            paper = result.paper_values.get(key, "n/a")
            marker = "ok " if str(measured) == str(paper) else "   "
            print(f"   {marker}{key}: measured={measured}  paper={paper}")
        print()

    # Export the full tables and figure series.
    table_reports = {
        "table1": table1(dataset),
        "table2": table2(dataset),
        "table3": table3(dataset),
        "table4": table4(dataset),
        "table5": table5(dataset),
        "table6": table6(dataset),
        "ksets": ksets_summary(dataset),
    }
    for name, report in table_reports.items():
        (output_dir / f"{name}.txt").write_text(report.text + "\n", encoding="utf-8")
        to_csv(report.headers, report.rows, output_dir / f"{name}.csv")

    for name, figure in (("figure2", figure2(dataset)), ("figure3", figure3(dataset))):
        (output_dir / f"{name}.txt").write_text(figure.text + "\n", encoding="utf-8")
        rows = [
            (series_name, key, value)
            for series_name, series in figure.series.items()
            for key, value in series.items()
        ]
        to_csv(("series", "x", "value"), rows, output_dir / f"{name}.csv")

    print(f"wrote {len(table_reports) * 2 + 4} files to {output_dir}")


if __name__ == "__main__":
    main()
