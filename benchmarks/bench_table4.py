"""Table IV -- Isolated Thin Server shared vulnerabilities broken down by part."""

from conftest import report_experiment

from repro.reports.experiments import run_experiment


def test_table4_shared_by_part(benchmark, dataset):
    result = benchmark(run_experiment, "Table IV", dataset)
    report_experiment(result)
    print(result.rendering)
    assert result.measured["Windows2000-Windows2003"] == 81
    assert result.measured["Debian-RedHat"] == 11
