"""Bitset Monte-Carlo simulation engine vs the naive per-run object path.

The paper motivates the whole study with the claim that a diverse replica
group forces the adversary to compromise each replica separately.  This bench
measures that claim on the corpus *and* gates the simulation engine rework:

* on the **paper-sized** calibrated corpus both engines run the same seeded
  campaigns and must produce bit-for-bit identical ``SimulationResult``s,
  across Poisson and aging arrivals, smart openings and proactive recovery;
* on the **scaled** 100-OS catalogue (``generate_scaled_catalogue``) a
  500-run campaign must be at least 10x faster on the bitset engine, which
  compiles the exploitable pool and the per-exploit victim bitmasks once
  instead of re-filtering the 4000-entry corpus on every run.

Run the paper-sized smoke subset (what CI does)::

    PYTHONPATH=src python -m pytest benchmarks/bench_simulation.py -q -s -k paper

or the full comparison, including the 500-run 100-OS speedup gate::

    PYTHONPATH=src python -m pytest benchmarks/bench_simulation.py -q -s
"""

from __future__ import annotations

import time

from repro.core.constants import FIGURE3_CONFIGURATIONS
from repro.itsys.simulation import CompromiseSimulation
from repro.synthetic.generator import generate_scaled_catalogue

SPEEDUP_FLOOR = 10.0  # acceptance gate for the 500-run scaled campaign


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


# ---------------------------------------------------------------------------
# paper-sized corpus (CI smoke subset: -k paper)
# ---------------------------------------------------------------------------


def test_paper_sized_campaigns_agree_and_speed_up(corpus):
    """Homogeneous vs Set1, 200 runs: identical results, bitset much faster."""
    configurations = {
        "homogeneous-Debian": ("Debian",) * 4,
        "Set1": FIGURE3_CONFIGURATIONS["Set1"],
    }
    campaign = dict(runs=200, exploit_rate=1.0, horizon=5.0, recovery_interval=2.0)
    fast = CompromiseSimulation(corpus.valid_entries, seed=42, engine="bitset")
    naive = CompromiseSimulation(corpus.valid_entries, seed=42, engine="naive")
    fast_results, fast_s = _timed(fast.compare, configurations, **campaign)
    naive_results, naive_s = _timed(naive.compare, configurations, **campaign)
    assert fast_results == naive_results
    by_name = {result.name: result for result in fast_results}
    print("\n=== paper-sized campaigns (200 runs, naive vs bitset) ===")
    for result in fast_results:
        print(f"  {result.summary()}")
    print(f"  naive={naive_s * 1e3:8.1f}ms  bitset={fast_s * 1e3:8.1f}ms  "
          f"x{naive_s / fast_s:.1f}")
    assert (
        by_name["homogeneous-Debian"].safety_violation_probability
        >= by_name["Set1"].safety_violation_probability
    )
    assert (
        by_name["homogeneous-Debian"].mean_compromised
        >= by_name["Set1"].mean_compromised
    )


def test_paper_sized_scenario_matrix_agrees(corpus):
    """Aging arrivals, smart openings, 2f+1 quorums: engines stay identical."""
    fast = CompromiseSimulation(corpus.valid_entries, seed=7, engine="bitset")
    naive = fast.with_engine("naive")
    scenarios = {
        "aging": dict(arrival="aging", shape=1.8),
        "smart": dict(smart=True, recovery_interval=1.0),
        "2f+1-untargeted": dict(quorum_model="2f+1", targeted=False),
    }
    print("\n=== paper-sized scenario matrix (40 runs each) ===")
    for label, extra in scenarios.items():
        campaign = dict(runs=40, exploit_rate=1.5, horizon=4.0, **extra)
        fast_result = fast.run_configuration(
            label, FIGURE3_CONFIGURATIONS["Set1"], **campaign
        )
        naive_result = naive.run_configuration(
            label, FIGURE3_CONFIGURATIONS["Set1"], **campaign
        )
        assert fast_result == naive_result
        print(f"  {fast_result.summary()}")


def test_paper_sized_recovery_sweep(corpus):
    """More frequent rejuvenation never hurts the diverse group's safety."""
    simulation = CompromiseSimulation(corpus.valid_entries, seed=11)
    sweep = simulation.recovery_sweep(
        "Set1",
        FIGURE3_CONFIGURATIONS["Set1"],
        intervals=[None, 2.0, 0.5],
        runs=60,
        exploit_rate=1.0,
        horizon=8.0,
    )
    print("\n=== paper-sized recovery sweep (Set1, 60 runs) ===")
    for interval, result in sweep.items():
        print(f"  {result.summary()}")
    assert (
        sweep[0.5].safety_violation_probability
        <= sweep[None].safety_violation_probability
    )


# ---------------------------------------------------------------------------
# scaled 100-OS catalogue (the acceptance gate)
# ---------------------------------------------------------------------------


def test_scaled_catalogue_500_run_speedup():
    """A 500-run campaign on the 100-OS catalogue: bitset >= 10x faster."""
    catalogue = generate_scaled_catalogue(n_families=10, releases_per_family=10)
    assert len(catalogue.os_names) == 100
    group = ("F00-R00", "F02-R05", "F04-R09", "F07-R03")
    campaign = dict(runs=500, exploit_rate=2.0, horizon=10.0, recovery_interval=2.0)

    fast = CompromiseSimulation(
        catalogue.entries, seed=42, engine="bitset", catalogued=False
    )
    naive = fast.with_engine("naive")
    fast_result, fast_s = _timed(
        fast.run_configuration, "scaled-diverse", group, **campaign
    )
    naive_result, naive_s = _timed(
        naive.run_configuration, "scaled-diverse", group, **campaign
    )
    assert fast_result == naive_result

    speedup = naive_s / fast_s
    print("\n=== scaled catalogue: 500-run campaign, 100 OSes, 4000 entries ===")
    print(f"  {fast_result.summary()}")
    print(f"  bitset: {fast_s * 1e3:7.1f}ms   naive: {naive_s * 1e3:8.1f}ms")
    print(f"  speedup: x{speedup:.1f}  (floor: x{SPEEDUP_FLOOR:.0f})")
    assert speedup >= SPEEDUP_FLOOR


def test_scaled_catalogue_homogeneous_vs_cross_family():
    """Diversity pays on the scaled catalogue too: same family >> cross family."""
    catalogue = generate_scaled_catalogue(n_families=10, releases_per_family=10)
    simulation = CompromiseSimulation(
        catalogue.entries, seed=9, engine="bitset", catalogued=False
    )
    campaign = dict(runs=200, exploit_rate=1.0, horizon=4.0)
    same_family = simulation.run_configuration(
        "same-family", ("F00-R00", "F00-R01", "F00-R02", "F00-R03"), **campaign
    )
    cross_family = simulation.run_configuration(
        "cross-family", ("F00-R00", "F03-R04", "F06-R08", "F09-R02"), **campaign
    )
    print("\n=== scaled catalogue: intra-family vs cross-family groups ===")
    print(f"  {same_family.summary()}")
    print(f"  {cross_family.summary()}")
    assert (
        cross_family.safety_violation_probability
        <= same_family.safety_violation_probability
    )
    assert cross_family.mean_compromised <= same_family.mean_compromised
