"""Intrusion-tolerance gain -- Monte-Carlo comparison of replica configurations.

The paper motivates the whole study with the claim that a diverse replica
group forces the adversary to compromise each replica separately.  This bench
measures that claim on the corpus: the probability that more than f replicas
are compromised (safety violation) for a homogeneous 3f+1 deployment versus
the paper's most diverse set (Set1), with and without proactive recovery.
"""

from repro.core.constants import FIGURE3_CONFIGURATIONS
from repro.itsys.simulation import CompromiseSimulation


def test_single_exploit_defeat_probability(benchmark, corpus):
    """One exploit defeats 4x-same-OS always; a diverse set almost never."""
    simulation = CompromiseSimulation(corpus.valid_entries)

    def run():
        return (
            simulation.single_exploit_analysis("homogeneous", ("Debian",) * 4),
            simulation.single_exploit_analysis("Set1", FIGURE3_CONFIGURATIONS["Set1"]),
        )

    homogeneous, diverse = benchmark(run)
    print(
        f"\n  homogeneous: P[single exploit defeats group]="
        f"{homogeneous.single_attack_defeat_probability:.2f}"
        f"\n  Set1:        P[single exploit defeats group]="
        f"{diverse.single_attack_defeat_probability:.2f}"
    )
    assert homogeneous.single_attack_defeat_probability == 1.0
    assert diverse.single_attack_defeat_probability < 0.1


def test_homogeneous_vs_diverse(benchmark, corpus):
    simulation = CompromiseSimulation(corpus.valid_entries, seed=42)

    def run():
        return simulation.homogeneous_vs_diverse(
            "Debian",
            FIGURE3_CONFIGURATIONS["Set1"],
            runs=60,
            exploit_rate=1.0,
            horizon=3.0,
        )

    homogeneous, diverse = benchmark(run)
    print(f"\n{homogeneous.summary()}\n{diverse.summary()}")
    assert homogeneous.safety_violation_probability >= diverse.safety_violation_probability
    assert homogeneous.mean_compromised >= diverse.mean_compromised


def test_diversity_with_proactive_recovery(benchmark, corpus):
    """With periodic rejuvenation, diversity keeps the violation window small."""
    simulation = CompromiseSimulation(corpus.valid_entries, seed=7)

    def run():
        return simulation.compare(
            {
                "homogeneous-Windows2003": ("Windows2003",) * 4,
                "Set1": FIGURE3_CONFIGURATIONS["Set1"],
                "Set4": FIGURE3_CONFIGURATIONS["Set4"],
            },
            runs=40,
            exploit_rate=1.0,
            horizon=10.0,
            recovery_interval=2.0,
        )

    results = benchmark(run)
    by_name = {result.name: result for result in results}
    print()
    for result in results:
        print(f"  {result.summary()}")
    assert (
        by_name["Set1"].safety_violation_probability
        <= by_name["homogeneous-Windows2003"].safety_violation_probability
    )
