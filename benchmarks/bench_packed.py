"""Packed-word numpy engine vs bitset: catalogue-wide queries and deltas.

Two corpora are exercised:

* the **paper-sized** calibrated corpus (11 OSes, ~2.2k entries), where all
  three engines run the full workload and must agree entry for entry, and a
  1% modification delta patches bit-for-bit;
* a **scaled** 500-OS catalogue (25 families x 20 releases, 20000 entries)
  from :func:`repro.synthetic.generator.generate_scaled_catalogue`, carrying
  the two acceptance gates of the packed engine:

  - the catalogue-wide query workload (full pair matrix + k=3 over 100 OSes
    + k=4 over 40 OSes) must run >= 10x faster on the packed engine's
    array APIs (:meth:`~repro.analysis.engine.PackedIndex.pair_count_matrix`,
    :meth:`~repro.analysis.engine.PackedIndex.k_set_counts`) than on the
    bitset engine -- per-combination big-int ANDs are interpreter-bound at
    this scale, column-walking :func:`~repro.analysis.engine.combination_counts`
    is not;
  - :meth:`~repro.analysis.engine.PackedIndex.apply_diff` over a 1%
    modification delta must run >= 10x faster than recompiling the corpus
    from scratch, while producing a bit-for-bit identical index.

Run the paper-sized smoke subset (what CI does)::

    PYTHONPATH=src python -m pytest benchmarks/bench_packed.py -q -k paper

or the full comparison, including both 500-OS speedup gates::

    PYTHONPATH=src python -m pytest benchmarks/bench_packed.py -q
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.analysis.engine import PackedIndex
from repro.analysis.pairs import PairAnalysis
from repro.core.enums import ServerConfiguration
from repro.snapshots.diff import SnapshotDiff
from repro.synthetic.generator import generate_scaled_catalogue

SPEEDUP_FLOOR = 10.0  # packed vs bitset on the 500-OS query workload
DELTA_SPEEDUP_FLOOR = 10.0  # apply_diff vs recompile on a 1% delta


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def _best_of(fn, reps):
    """Best-of-``reps`` wall time (noise-robust for millisecond paths)."""
    result, best = _timed(fn)
    for _ in range(reps - 1):
        result, elapsed = _timed(fn)
        best = min(best, elapsed)
    return result, best


def _modification_delta(entries, os_names, fraction=0.01, seed=7):
    """A ``SnapshotDiff`` churning the affected-OS sets of 1% of the corpus.

    Publication dates and ids are untouched -- the canonical entry order is
    preserved, exactly the shape of a routine feed revision landing on the
    service's snapshot ledger.
    """
    rng = np.random.default_rng(seed)
    picks = rng.choice(
        len(entries), size=max(1, int(len(entries) * fraction)), replace=False
    )
    old, new = {}, {}
    new_entries = list(entries)
    for position in sorted(picks.tolist()):
        entry = entries[position]
        churned = frozenset(
            sorted(entry.affected_os)[:-1] or [os_names[position % len(os_names)]]
        ) | {os_names[(position * 7) % len(os_names)]}
        modified = dataclasses.replace(entry, affected_os=churned)
        old[entry.cve_id] = entry
        new[entry.cve_id] = modified
        new_entries[position] = modified
    diff = SnapshotDiff(
        from_snapshot=None,
        to_snapshot=None,
        added=(),
        modified=tuple(sorted(new)),
        removed=(),
        old_entries=old,
        new_entries=new,
    )
    return diff, new_entries


def _assert_bit_for_bit(patched: PackedIndex, fresh: PackedIndex) -> None:
    assert patched.entries == fresh.entries
    assert np.array_equal(patched._rows, fresh._rows)
    assert np.array_equal(patched._bool_matrix(), fresh._bool_matrix())


# ---------------------------------------------------------------------------
# paper-sized corpus (CI smoke subset: -k paper)
# ---------------------------------------------------------------------------


def test_paper_sized_three_engine_pair_matrices_agree(dataset):
    """Full Table III pair matrices: three engines, identical values."""
    views = {engine: dataset.with_engine(engine) for engine in ("naive", "bitset", "packed")}
    views["bitset"].incidence  # build the indexes outside the timed region
    views["packed"].packed
    print("\n=== paper-sized pair matrix (55 pairs, three engines) ===")
    for configuration in ServerConfiguration:
        matrices = {}
        timings = {}
        for engine, view in views.items():
            matrices[engine], timings[engine] = _timed(
                PairAnalysis(view).shared_matrix, configuration
            )
        assert matrices["naive"] == matrices["bitset"] == matrices["packed"]
        print(
            f"  {configuration.value:24s} "
            + "  ".join(
                f"{engine}={timings[engine] * 1e3:7.2f}ms" for engine in views
            )
        )


def test_paper_sized_packed_ksets_agree(dataset):
    """k-set totals on the 11-OS catalogue: packed equals bitset, k=2..4."""
    bitset = dataset.with_engine("bitset").valid()
    packed = dataset.with_engine("packed").valid()
    names = dataset.os_names
    print("\n=== paper-sized k-set totals (bitset vs packed) ===")
    for k in (2, 3, 4):
        bitset_totals, bitset_s = _timed(bitset.query_index().k_set_totals, names, k)
        packed_totals, packed_s = _timed(packed.query_index().k_set_totals, names, k)
        assert bitset_totals == packed_totals
        print(
            f"  k={k}: {len(bitset_totals):4d} combos  "
            f"bitset={bitset_s * 1e3:7.2f}ms  packed={packed_s * 1e3:7.2f}ms"
        )


def test_paper_sized_delta_patches_bit_for_bit(dataset):
    """A 1% modification delta patches the paper corpus bit for bit."""
    entries = sorted(
        dataset.entries, key=lambda entry: (entry.published, entry.cve_id)
    )
    names = dataset.os_names
    diff, new_entries = _modification_delta(entries, names)
    base = PackedIndex(entries, names)
    patched, patch_s = _timed(base.apply_diff, diff)
    fresh, fresh_s = _timed(PackedIndex, new_entries, names)
    _assert_bit_for_bit(patched, fresh)
    print(
        f"\n=== paper-sized 1% delta ({len(diff.modified)} modifications) ===\n"
        f"  apply_diff={patch_s * 1e3:.2f}ms  recompile={fresh_s * 1e3:.2f}ms"
    )


# ---------------------------------------------------------------------------
# scaled 500-OS catalogue (the acceptance gates)
# ---------------------------------------------------------------------------


def _scaled_catalogue():
    catalogue = generate_scaled_catalogue(n_families=25, releases_per_family=20)
    assert len(catalogue.os_names) == 500
    return catalogue


def test_scaled_catalogue_query_workload_speedup():
    """Pair matrix + k-set workload on 500 OSes: packed >= 10x bitset."""
    catalogue = _scaled_catalogue()
    names = catalogue.os_names
    bitset = catalogue.dataset(engine="bitset").query_index()
    packed = catalogue.dataset(engine="packed").query_index()

    def bitset_workload():
        return (
            bitset.pair_matrix(names),
            bitset.k_set_totals(names[:100], 3),
            bitset.k_set_totals(names[:40], 4),
        )

    def packed_workload():
        return (
            packed.pair_count_matrix(names),
            packed.k_set_counts(names[:100], 3),
            packed.k_set_counts(names[:40], 4),
        )

    (bitset_pairs, bitset_k3, bitset_k4), bitset_s = _timed(bitset_workload)
    # The packed timing is *cold*: it includes building the Gram matrix.
    (packed_pairs, packed_k3, packed_k4), packed_s = _timed(packed_workload)

    # Same numbers, engine for engine (outside the timed region: assembling
    # 124 750-key dicts costs more than the packed query itself).
    assert packed.pair_matrix(names) == bitset_pairs
    assert packed.k_set_totals(names[:100], 3) == bitset_k3
    assert packed.k_set_totals(names[:40], 4) == bitset_k4
    assert np.array_equal(packed_k3, np.fromiter(bitset_k3.values(), dtype=np.int64))
    assert np.array_equal(packed_k4, np.fromiter(bitset_k4.values(), dtype=np.int64))

    speedup = bitset_s / packed_s
    print("\n=== scaled catalogue: 500-OS query workload ===")
    print(f"  pair matrix: {len(bitset_pairs)} pairs; "
          f"k=3 over 100 OSes: {len(bitset_k3)} combos; "
          f"k=4 over 40 OSes: {len(bitset_k4)} combos")
    print(f"  bitset: {bitset_s * 1e3:7.1f}ms   packed: {packed_s * 1e3:6.1f}ms (cold)")
    print(f"  speedup: x{speedup:.1f}  (floor: x{SPEEDUP_FLOOR:.0f})")
    assert speedup >= SPEEDUP_FLOOR


def test_scaled_catalogue_delta_patch_speedup():
    """apply_diff on a 1% delta: >= 10x faster than a full recompile."""
    catalogue = _scaled_catalogue()
    names = catalogue.os_names
    entries = sorted(
        catalogue.entries, key=lambda entry: (entry.published, entry.cve_id)
    )
    diff, new_entries = _modification_delta(entries, names)
    base = PackedIndex(entries, names)

    patched, patch_s = _best_of(lambda: base.apply_diff(diff), reps=5)
    fresh, fresh_s = _best_of(lambda: PackedIndex(new_entries, names), reps=3)
    _assert_bit_for_bit(patched, fresh)

    speedup = fresh_s / patch_s
    print("\n=== scaled catalogue: 1% delta on 20000 entries ===")
    print(f"  {len(diff.modified)} modified entries, "
          f"{len(entries)} total, {len(names)} OSes")
    print(f"  apply_diff: {patch_s * 1e3:6.2f}ms   recompile: {fresh_s * 1e3:6.1f}ms")
    print(f"  speedup: x{speedup:.1f}  (floor: x{DELTA_SPEEDUP_FLOOR:.0f})")
    assert speedup >= DELTA_SPEEDUP_FLOOR
