"""Production-churn soak gate: a 2-worker cluster under mixed load + deltas.

The end-to-end "production under churn" proof for the sharded serving
layer, held on a live cluster (real sockets, real processes, one shared
snapshot ledger):

* **zero stale ETag reads** -- once a delta-ingest call returns, no reader
  revalidates against a retired ETag of a touched scope on *any* worker;
* **monotone snapshot visibility** -- no reader ever sees the dataset's
  ``snapshot_id`` go backwards within its request stream;
* **bounded latency** -- p99 across >= 200 mixed requests stays under
  :data:`P99_CEILING` while the deltas are landing.

The reusable harness lives in ``tests/service/soak.py`` (the same one the
fault-injection tests drive); this module is the acceptance gate over it.

Run the smoke subset (what CI does)::

    PYTHONPATH=src python -m pytest benchmarks/bench_soak.py -q -s -k smoke

The same test constitutes the full gate; the suffix only mirrors the other
benchmarks' CI convention.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT) not in sys.path:
    sys.path.insert(0, str(_ROOT))

from repro.db.database import VulnerabilityDatabase  # noqa: E402
from repro.db.ingest import IngestPipeline  # noqa: E402
from repro.service import ServiceCluster, ServiceConfig  # noqa: E402
from repro.snapshots.store import SnapshotStore  # noqa: E402

from tests.service.soak import run_soak  # noqa: E402

#: Acceptance gate: p99 latency (seconds) across the mixed load while
#: deltas are landing.  Deliberately generous -- the gate is "bounded under
#: churn", not a micro-benchmark -- but tight enough to catch a worker
#: stalling behind an ingest.
P99_CEILING = 5.0

#: Acceptance gate: the soak must observe at least this many requests.
MIN_REQUESTS = 200

WORKERS = 2
DELTAS = 2


@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"the soak gate needs >= {WORKERS} cores to mean anything",
)
def test_soak_smoke_production_churn(corpus, tmp_path_factory):
    """p99 bounded, 0 stale reads, monotone snapshots under live churn."""
    root = tmp_path_factory.mktemp("soak-bench")
    db_path = root / "soak.db"
    database = VulnerabilityDatabase(db_path)
    IngestPipeline(database=database).ingest_raw(corpus.to_raw_feed_entries())
    base = SnapshotStore(database).commit(source="soak seed")
    database.close()

    config = ServiceConfig(
        port=0, workers=WORKERS, db=str(db_path), drain_grace=10.0
    )
    cluster = ServiceCluster(config)
    cluster.start()
    try:
        report = run_soak(
            cluster.internal_urls,
            corpus,
            root,
            deltas=DELTAS,
            readers_per_url=2,
            min_requests=MIN_REQUESTS,
        )
    finally:
        cluster.stop()

    assert len(report.observations) >= MIN_REQUESTS, (
        f"soak observed only {len(report.observations)} requests "
        f"(floor {MIN_REQUESTS})"
    )
    assert not report.errors, (
        f"{len(report.errors)} connection errors on a healthy cluster: "
        f"{report.errors[:3]}"
    )
    unexpected = {
        status for status in report.statuses if status not in (200, 304)
    }
    assert not unexpected, f"unexpected statuses under churn: {report.statuses}"
    assert len(report.marks) == DELTAS
    for mark in report.marks:
        assert mark.report["modified"] > 0, (
            f"delta {mark.index} was a no-op: {mark.report}"
        )

    stale = report.stale_reads()
    assert not stale, (
        f"{len(stale)} stale ETag reads after ingest returned: {stale[:3]}"
    )
    regressions = report.snapshot_regressions()
    assert not regressions, (
        f"snapshot visibility went backwards: {regressions[:3]}"
    )
    # Every delta commits one snapshot on top of the seed, and the readers
    # must actually see the final head (fresh data, not just no staleness).
    head_id = base.snapshot_id + DELTAS
    seen_ids = {
        obs.snapshot_id
        for obs in report.observations
        if obs.snapshot_id is not None
    }
    assert head_id in seen_ids, (
        f"no reader ever saw the post-churn head snapshot {head_id}; "
        f"observed ids: {sorted(seen_ids)}"
    )

    p99 = report.latency_percentile(0.99)
    p50 = report.latency_percentile(0.50)
    print(f"\n=== soak: {WORKERS}-worker cluster, {DELTAS} deltas, "
          f"{len(report.observations)} mixed requests in {report.elapsed:.1f}s ===")
    print(f"  statuses : {report.statuses}")
    print(f"  latency  : p50 {p50 * 1e3:7.2f}ms  p99 {p99 * 1e3:7.2f}ms "
          f"(ceiling {P99_CEILING * 1e3:.0f}ms)")
    print(f"  stale    : 0 / regressions: 0 / head snapshot {head_id} visible")
    assert p99 <= P99_CEILING, (
        f"p99 latency {p99:.2f}s exceeds the {P99_CEILING}s ceiling under churn"
    )
