"""Section IV-C -- replica-set selection strategies.

Benchmarks the three selection strategies on the history-period data and
prints the resulting groups, which should contain the paper's Set1/Set2.
"""

from repro.analysis.periods import PeriodAnalysis
from repro.analysis.selection import ReplicaSetSelector
from repro.core.constants import TABLE5_OSES


def _selector(dataset):
    periods = PeriodAnalysis(dataset)
    return ReplicaSetSelector(
        pair_matrix=periods.history_pair_matrix(), candidates=TABLE5_OSES
    )


def test_exhaustive_selection(benchmark, dataset):
    selector = _selector(dataset)
    top = benchmark(selector.exhaustive, 4, 3)
    print("\ntop-3 four-OS groups (history period):")
    for result in top:
        print(f"  {result.os_names}  pairwise shared={result.pairwise_shared}")
    groups = [set(result.os_names) for result in top]
    assert {"Windows2003", "Solaris", "Debian", "OpenBSD"} in groups
    assert {"Windows2003", "Solaris", "Debian", "NetBSD"} in groups


def test_greedy_selection(benchmark, dataset):
    selector = _selector(dataset)
    result = benchmark(selector.greedy, 4)
    assert len(result.os_names) == 4


def test_graph_selection(benchmark, dataset):
    selector = _selector(dataset)
    result = benchmark(selector.graph_based, 4)
    exhaustive = selector.exhaustive(4, top=1)[0]
    assert result.pairwise_shared <= exhaustive.pairwise_shared + 3


def test_selection_scales_to_larger_groups(benchmark, dataset):
    """Seven distinct OSes support f=2 (3f+1) / f=3 (2f+1), as the paper notes."""
    selector = ReplicaSetSelector(dataset=dataset.valid(), candidates=None)
    result = benchmark(selector.greedy, 7)
    assert len(result.os_names) == 7
