"""Table I -- distribution of OS vulnerabilities in NVD (valid/excluded per OS)."""

from conftest import report_experiment

from repro.reports.experiments import run_experiment


def test_table1_distribution_of_vulnerabilities(benchmark, dataset):
    result = benchmark(run_experiment, "Table I", dataset)
    report_experiment(result)
    print(result.rendering)
    assert result.measured["distinct_unknown"] == 60
    assert result.measured["solaris_valid"] == 400
