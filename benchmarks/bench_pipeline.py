"""End-to-end collection pipeline: feeds -> parse -> normalise -> SQL database.

This benchmarks the machinery of Section III of the paper (the part that ran
against the real NVD XML feeds): corpus generation, feed serialisation, XML
parsing, CPE normalisation, validity filtering, classification and SQL
insertion.
"""

import pytest

from repro.db.ingest import IngestPipeline
from repro.nvd.feed_parser import parse_xml_feeds
from repro.synthetic.corpus import build_corpus


@pytest.fixture(scope="module")
def feed_paths(corpus, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench-feeds")
    return corpus.write_xml_feeds(directory)


def test_corpus_generation(benchmark):
    corpus = benchmark(build_corpus)
    assert len(corpus.valid_entries) > 1800


def test_feed_parsing(benchmark, feed_paths):
    entries = benchmark(parse_xml_feeds, feed_paths)
    assert len(entries) > 2000


def test_full_ingest(benchmark, feed_paths, corpus):
    def ingest():
        pipeline = IngestPipeline()
        report = pipeline.ingest_xml_feeds(feed_paths)
        pipeline.database.close()
        return report

    report = benchmark(ingest)
    print(
        f"\nparsed={report.parsed_entries} ingested={report.ingested_entries} "
        f"valid={report.valid_entries} excluded={report.excluded_entries}"
    )
    assert report.ingested_entries == len(corpus.entries)
    assert report.valid_entries == len(corpus.valid_entries)
