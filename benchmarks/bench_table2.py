"""Table II -- vulnerabilities per OS component class."""

from conftest import report_experiment

from repro.reports.experiments import run_experiment


def test_table2_component_classes(benchmark, dataset):
    result = benchmark(run_experiment, "Table II", dataset)
    report_experiment(result)
    print(result.rendering)
    # Shapes from the paper: Application and Kernel dominate, Drivers are rare.
    assert result.measured["driver_pct"] < 2.0
    assert result.measured["kernel_pct"] > 30.0
    assert result.measured["application_pct"] > 35.0
