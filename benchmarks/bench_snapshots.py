"""Incremental ingestion: speed, idempotence and selective-invalidation gates.

The snapshot subsystem promises that the reproduction is *incrementally*
updatable, and this bench holds it to all three acceptance criteria on the
full calibrated corpus:

* **speed** -- applying a 1%-modified delta feed (parse + upsert + snapshot
  commit) is at least ``10x`` faster than a full re-ingest of the corpus
  feed (parse + normalise + classify + insert + snapshot commit);
* **idempotence** -- re-applying the same delta mutates nothing and commits
  no new snapshot: the ledger head keeps the identical digest;
* **selective invalidation** -- after a delta touching one OS, a warm-cache
  sweep re-runs only the cells whose OSes appear in the snapshot diff;
  every other cell is served from the content-addressed cache with its
  bytes unchanged on disk.

Run the smoke subset (what CI does)::

    PYTHONPATH=src python -m pytest benchmarks/bench_snapshots.py -q -s -k smoke

or the full gate including the 10x timing floor::

    PYTHONPATH=src python -m pytest benchmarks/bench_snapshots.py -q -s
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.classify.filters import ServerConfigurationFilter
from repro.core.enums import ServerConfiguration
from repro.db.database import VulnerabilityDatabase
from repro.db.ingest import IngestPipeline
from repro.runner import ExperimentGrid, GridRunner, ResultCache
from repro.snapshots.delta import DeltaIngestPipeline
from repro.snapshots.store import SnapshotStore
from repro.synthetic.evolution import evolve_corpus

#: Acceptance gate: 1%-modified delta ingest vs full re-ingest.
DELTA_SPEEDUP_FLOOR = 10.0


def _full_ingest(feed_paths, db_path):
    """Full pipeline: parse feeds, normalise, classify, insert, snapshot."""
    database = VulnerabilityDatabase(db_path)
    pipeline = IngestPipeline(database=database)
    started = time.perf_counter()
    pipeline.ingest_xml_feeds(feed_paths)
    record = SnapshotStore(database).commit(source="full")
    elapsed = time.perf_counter() - started
    return database, pipeline, record, elapsed


@pytest.fixture(scope="module")
def ingested(corpus, tmp_path_factory):
    """The corpus written as feeds and fully ingested once, with timings."""
    root = tmp_path_factory.mktemp("snapshots-bench")
    feed_dir = root / "feeds"
    paths = corpus.write_xml_feeds(feed_dir)
    database, pipeline, record, full_seconds = _full_ingest(paths, root / "corpus.db")
    return {
        "root": root,
        "feed_paths": paths,
        "database": database,
        "pipeline": pipeline,
        "snapshot": record,
        "full_seconds": full_seconds,
    }


# ---------------------------------------------------------------------------
# smoke subset (CI: -k smoke)
# ---------------------------------------------------------------------------


def test_snapshots_smoke_delta_is_idempotent(corpus, ingested):
    """Applying the same 1% delta twice: second pass is a ledger no-op."""
    delta = evolve_corpus(corpus, fraction=0.01, seed=1311, rejections=2)
    feed = delta.write_feed(ingested["root"] / "modified.xml")
    pipeline = DeltaIngestPipeline(ingested["pipeline"])

    first = pipeline.apply_feed(feed, source="delta")
    assert first.changed == len(delta.entries)
    assert first.snapshot is not None
    assert first.snapshot.parent_digest == ingested["snapshot"].digest

    second = pipeline.apply_feed(feed, source="delta-replay")
    assert second.changed == 0
    assert second.snapshot.digest == first.snapshot.digest
    assert second.snapshot.snapshot_id == first.snapshot.snapshot_id
    print(f"\n=== snapshots smoke (idempotence) ===")
    print(f"  first apply : {first.summary()}")
    print(f"  second apply: {second.summary()}")


def test_snapshots_smoke_selective_cache_invalidation(corpus, tmp_path):
    """After a Debian-only delta, a warm sweep re-runs only Debian cells."""
    database = VulnerabilityDatabase()
    pipeline = IngestPipeline(database=database)
    pipeline.ingest_raw(corpus.to_raw_feed_entries())
    store = SnapshotStore(database)
    base = store.commit(source="full")

    grid = ExperimentGrid(
        configurations={
            "debian-mixed": ("Debian", "OpenBSD", "Solaris", "Windows2003"),
            "windows-only": ("Windows2000", "Windows2003", "Windows2008",
                             "Windows2000"),
        },
        runs=20,
        horizon=2.0,
    )
    cache = ResultCache(tmp_path / "cache")
    before = store.dataset_at(base.snapshot_id)
    cold = GridRunner(
        [entry for entry in before if entry.is_valid], seed=41, cache=cache
    ).run(grid)
    assert cold.cached_cells == 0

    # A delta over entries the Isolated-Thin simulation can actually see,
    # touching Debian but none of the windows-only cell's OSes.
    admits = ServerConfigurationFilter(ServerConfiguration.ISOLATED_THIN).admits
    delta = evolve_corpus(
        corpus, fraction=0.005, seed=7, target_os="Debian",
        entry_filter=lambda entry: admits(entry)
        and not entry.affected_os & {"Windows2000", "Windows2003", "Windows2008"},
    )
    report = DeltaIngestPipeline(pipeline, store).apply_raw(
        delta.entries, source="debian-delta"
    )
    diff = store.diff(base.snapshot_id, report.snapshot.snapshot_id)
    assert "Debian" in diff.affected_os_names()

    cached_paths = sorted((tmp_path / "cache").glob("*.json"))
    cached_bytes = {path: path.read_bytes() for path in cached_paths}

    after = store.dataset_at(report.snapshot.snapshot_id)
    warm = GridRunner(
        [entry for entry in after if entry.is_valid], seed=41, cache=cache
    ).run(grid)
    rerun = {cell.cell.configuration for cell in warm.cells if not cell.cached}
    served = {cell.cell.configuration for cell in warm.cells if cell.cached}
    for cell in warm.cells:
        # Acceptance criterion: every cell the diff does not touch is a
        # cache hit.  (A touched cell re-runs whenever the change is inside
        # its admitted scope, as the Debian cell below demonstrates.)
        if not diff.touches_group(cell.cell.os_names):
            assert cell.cached, cell.cell.cell_id
    assert rerun == {"debian-mixed"}
    assert served == {"windows-only"}
    # Cache files of untouched cells are byte-identical on disk.
    for path, content in cached_bytes.items():
        assert path.read_bytes() == content
    print(f"\n=== snapshots smoke (selective invalidation) ===")
    print(f"  re-ran : {sorted(rerun)}")
    print(f"  cached : {sorted(served)}")


# ---------------------------------------------------------------------------
# full gate (the 10x timing floor)
# ---------------------------------------------------------------------------


def test_snapshots_delta_ingest_speedup(corpus, ingested):
    """1%-modified delta ingest >= 10x faster than a full re-ingest."""
    delta = evolve_corpus(corpus, fraction=0.01, seed=2011)
    feed = delta.write_feed(ingested["root"] / "speed-delta.xml")

    # Fresh full ingest (measured against a second, untouched database so
    # the comparison is parse-to-snapshot on both sides).
    _, _, _, full_seconds = _full_ingest(
        ingested["feed_paths"], ingested["root"] / "reingest.db"
    )

    pipeline = DeltaIngestPipeline(ingested["pipeline"])
    started = time.perf_counter()
    report = pipeline.apply_feed(feed, source="speed-delta")
    delta_seconds = time.perf_counter() - started
    assert report.modified > 0

    speedup = full_seconds / delta_seconds
    print(f"\n=== snapshots: delta vs full re-ingest "
          f"({len(corpus.entries)} entries, {len(delta.entries)} in delta) ===")
    print(f"  full re-ingest : {full_seconds * 1e3:8.1f}ms")
    print(f"  delta ingest   : {delta_seconds * 1e3:8.1f}ms")
    print(f"  speedup        : {speedup:5.1f}x (floor {DELTA_SPEEDUP_FLOOR}x)")
    assert speedup >= DELTA_SPEEDUP_FLOOR, (
        f"delta ingest speedup {speedup:.1f}x below the "
        f"{DELTA_SPEEDUP_FLOOR}x acceptance floor"
    )
