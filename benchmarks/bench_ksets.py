"""Section IV-B -- vulnerabilities shared by groups of three or more OSes."""

from conftest import report_experiment

from repro.reports.experiments import run_experiment


def test_ksets_higher_order_sharing(benchmark, dataset):
    result = benchmark(run_experiment, "Section IV-B", dataset)
    report_experiment(result)
    print(result.rendering)
    # Shape: the number of wide vulnerabilities drops steeply with k, and the
    # named DNS/DHCP CVEs are among the widest (see EXPERIMENTS.md for the
    # absolute-count deviation discussion).
    assert result.measured[">=3"] > result.measured[">=4"] > result.measured[">=5"]
    assert result.measured[">=5"] == 9
    assert "CVE-2008-1447" in result.measured["widest_cves"]
