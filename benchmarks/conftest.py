"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper: it
times the analysis with pytest-benchmark and prints the recomputed rows next
to the values published in the paper (paper-vs-measured), which is what
EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.dataset import VulnerabilityDataset  # noqa: E402
from repro.synthetic.corpus import build_corpus  # noqa: E402


@pytest.fixture(scope="session")
def corpus():
    return build_corpus()


@pytest.fixture(scope="session")
def dataset(corpus) -> VulnerabilityDataset:
    return VulnerabilityDataset(corpus.entries)


def report_experiment(result) -> None:
    """Print a paper-vs-measured comparison for an experiment result."""
    print(f"\n=== {result.experiment_id}: {result.description} ===")
    width = max((len(str(key)) for key in result.measured), default=10)
    for key, measured in result.measured.items():
        paper = result.paper_values.get(key, "n/a")
        print(f"  {str(key).ljust(width)}  measured={measured!r:>12}  paper={paper!r}")
