"""Parallel sweep runner: determinism, cache and wall-clock gates.

The experiment-grid runner promises three things, and this bench holds it to
all of them on a 16-cell grid (2 configurations x 2 quorum models x 2
recovery intervals x 2 arrival processes):

* **determinism** -- the merged ``SimulationResult`` of every cell is
  bit-for-bit identical for ``workers=1`` and ``workers=N`` (smoke subset,
  what CI runs);
* **caching** -- a warm-cache rerun answers every cell from the
  content-addressed cache with **zero** simulation calls (smoke subset);
* **speed** -- with 4 workers the sweep is at least ``3x`` faster than the
  single-process run on the same grid (skipped on machines with fewer than
  4 CPUs, where the gate is physically unreachable).

Run the smoke subset (what CI does)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep.py -q -s -k smoke

or the full gate, including the 4-worker speedup::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep.py -q -s
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runner import ArrivalSpec, ExperimentGrid, GridRunner, ResultCache

SPEEDUP_FLOOR = 3.0  # acceptance gate for the 16-cell grid at 4 workers
SPEEDUP_WORKERS = 4

SET1 = ("Windows2003", "Solaris", "Debian", "OpenBSD")


def _sixteen_cell_grid(runs: int, exploit_rate: float = 1.0,
                       horizon: float = 5.0) -> ExperimentGrid:
    grid = ExperimentGrid(
        configurations={
            "homogeneous-Debian": ("Debian",) * 4,
            "Set1": SET1,
        },
        quorum_models=("3f+1", "2f+1"),
        recovery_intervals=(None, 2.0),
        arrivals=(ArrivalSpec("poisson"), ArrivalSpec("aging", 1.8)),
        runs=runs,
        exploit_rate=exploit_rate,
        horizon=horizon,
    )
    assert len(grid) == 16
    return grid


def _timed_run(runner: GridRunner, grid: ExperimentGrid):
    start = time.perf_counter()
    report = runner.run(grid)
    return report, time.perf_counter() - start


# ---------------------------------------------------------------------------
# smoke subset (CI: -k smoke)
# ---------------------------------------------------------------------------


def test_sweep_smoke_workers_agree_bit_for_bit(corpus):
    """16-cell grid, 20 runs per cell: workers=1 == workers=2, bit for bit."""
    grid = _sixteen_cell_grid(runs=20)
    entries = corpus.valid_entries
    serial, serial_s = _timed_run(GridRunner(entries, seed=97, workers=1), grid)
    pooled, pooled_s = _timed_run(GridRunner(entries, seed=97, workers=2), grid)
    assert serial.results() == pooled.results()
    assert [cell.cell for cell in serial.cells] == [cell.cell for cell in pooled.cells]
    print(f"\n=== sweep smoke (16 cells x 20 runs) ===")
    print(f"  workers=1: {serial_s * 1e3:7.1f}ms   workers=2: {pooled_s * 1e3:7.1f}ms")
    print(f"  all 16 merged results identical")


def test_sweep_smoke_warm_cache_serves_every_cell(corpus, tmp_path):
    """A warm rerun touches the simulator zero times and changes nothing."""
    grid = _sixteen_cell_grid(runs=20)
    entries = corpus.valid_entries
    cold_cache = ResultCache(tmp_path / "sweep-cache")
    cold, cold_s = _timed_run(
        GridRunner(entries, seed=97, workers=1, cache=cold_cache), grid
    )
    warm_cache = ResultCache(tmp_path / "sweep-cache")
    warm, warm_s = _timed_run(
        GridRunner(entries, seed=97, workers=1, cache=warm_cache), grid
    )
    assert cold.simulated_cells == 16 and cold.cached_cells == 0
    assert warm.simulated_cells == 0 and warm.cached_cells == 16
    assert warm_cache.hits == 16 and warm_cache.misses == 0
    assert warm.results() == cold.results()
    print(f"\n=== sweep cache (16 cells x 20 runs) ===")
    print(f"  cold: {cold_s * 1e3:7.1f}ms   warm: {warm_s * 1e3:7.1f}ms "
          f"(x{cold_s / warm_s:.0f})")


# ---------------------------------------------------------------------------
# full gate: >= 3x wall-clock at 4 workers
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    (os.cpu_count() or 1) < SPEEDUP_WORKERS,
    reason=f"speedup gate needs >= {SPEEDUP_WORKERS} CPUs "
           f"(found {os.cpu_count() or 1})",
)
def test_sweep_speedup_at_four_workers(corpus):
    """16-cell production-shaped grid: >= 3x faster at 4 workers, identical.

    ~16k runs of ~500 exploit events each, so per-run simulation work
    dominates pool start-up and corpus pickling by a wide margin.
    """
    grid = _sixteen_cell_grid(runs=1000, exploit_rate=10.0, horizon=50.0)
    entries = corpus.valid_entries
    serial, serial_s = _timed_run(GridRunner(entries, seed=97, workers=1), grid)
    pooled, pooled_s = _timed_run(
        GridRunner(entries, seed=97, workers=SPEEDUP_WORKERS), grid
    )
    speedup = serial_s / pooled_s
    print(f"\n=== sweep speedup (16 cells x 1000 runs, horizon 50) ===")
    print(f"  workers=1: {serial_s:6.2f}s   workers={SPEEDUP_WORKERS}: "
          f"{pooled_s:6.2f}s   x{speedup:.2f}")
    assert serial.results() == pooled.results()
    assert speedup >= SPEEDUP_FLOOR, (
        f"expected >= {SPEEDUP_FLOOR}x at {SPEEDUP_WORKERS} workers, "
        f"measured {speedup:.2f}x"
    )
