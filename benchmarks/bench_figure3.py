"""Figure 3 -- history vs observed shared vulnerabilities for replica configurations."""

from conftest import report_experiment

from repro.reports.experiments import run_experiment


def test_figure3_replica_configurations(benchmark, dataset):
    result = benchmark(run_experiment, "Figure 3", dataset)
    report_experiment(result)
    print(result.rendering)
    # Paper shape: the non-diverse Debian baseline suffers many more
    # compromising vulnerabilities in the observed period than any of the
    # diverse sets selected from the history period.
    debian_observed = result.measured["Debian observed"]
    assert debian_observed == 9
    for name in ("Set1", "Set2", "Set3"):
        assert result.measured[f"{name} observed"] <= 2
        assert result.measured[f"{name} observed"] < debian_observed
