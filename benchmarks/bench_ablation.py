"""Ablation benches: robustness of the study's design choices.

Not a table in the paper, but DESIGN.md calls out the methodological choices
worth ablating: the validity filter, the server-configuration filters, the
history/observed split year, and (for this reproduction) the corpus seed.
Each bench times the ablation and prints its outcome.
"""

from repro.analysis.discovery import DiscoveryModelAnalysis
from repro.analysis.sensitivity import SensitivityAnalysis
from repro.core.constants import TABLE5_OSES


def test_configuration_ablation(benchmark, dataset):
    sensitivity = SensitivityAnalysis(dataset)
    results = benchmark(sensitivity.configuration_ablation)
    print()
    for result in results:
        print(f"  {result.name}: baseline={result.baseline:.1f}% variant={result.variant:.1f}%")
    for result in results:
        assert result.baseline >= result.variant


def test_validity_filter_ablation(benchmark, dataset):
    sensitivity = SensitivityAnalysis(dataset)
    result = benchmark(sensitivity.validity_filter_ablation)
    print(f"\n  {result.name}: baseline={result.baseline:.1f}% variant={result.variant:.1f}%")
    assert abs(result.delta) < 20.0


def test_split_year_sensitivity(benchmark, dataset):
    sensitivity = SensitivityAnalysis(dataset)
    recommendations = benchmark(sensitivity.split_year_sensitivity, (2004, 2005, 2006))
    print()
    for year, group in recommendations.items():
        print(f"  history up to {year}: {', '.join(group)}")
    assert len(recommendations) == 3


def test_leave_one_os_out(benchmark, dataset):
    sensitivity = SensitivityAnalysis(dataset)
    recommendations = benchmark(sensitivity.leave_one_os_out)
    print()
    for excluded, group in recommendations.items():
        print(f"  without {excluded:12s}: {', '.join(group)}")
    assert set(recommendations) == set(TABLE5_OSES)


def test_discovery_model_fits(benchmark, dataset):
    analysis = DiscoveryModelAnalysis(dataset.valid())
    winners = benchmark(analysis.best_model_per_os, TABLE5_OSES)
    print()
    for name, model in winners.items():
        print(f"  {name:12s}: best model = {model}")
    assert set(winners) == set(TABLE5_OSES)
