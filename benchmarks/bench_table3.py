"""Table III -- shared vulnerabilities for every OS pair under the three filters."""

from conftest import report_experiment

from repro.reports.experiments import run_experiment


def test_table3_pairwise_shared_vulnerabilities(benchmark, dataset):
    result = benchmark(run_experiment, "Table III", dataset)
    report_experiment(result)
    # The headline cells of the paper reproduce exactly.
    assert result.measured == result.paper_values
