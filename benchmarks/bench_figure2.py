"""Figure 2 -- temporal distribution of vulnerability publications per family."""

from conftest import report_experiment

from repro.reports.experiments import run_experiment


def test_figure2_temporal_distribution(benchmark, dataset):
    result = benchmark(run_experiment, "Figure 2", dataset)
    report_experiment(result)
    # Peaks and valleys correlate inside the Windows family (paper observation).
    assert result.measured["windows_family_correlation"] > 0.0
    assert result.measured["win2000_entries_before_release"] >= 1
