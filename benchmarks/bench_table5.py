"""Table V -- history (1994-2005) vs observed (2006-2010) shared vulnerabilities."""

from conftest import report_experiment

from repro.reports.experiments import run_experiment


def test_table5_history_vs_observed(benchmark, dataset):
    result = benchmark(run_experiment, "Table V", dataset)
    report_experiment(result)
    print(result.rendering)
    assert result.measured == result.paper_values
