"""Section IV-E -- summary findings of the study."""

from conftest import report_experiment

from repro.reports.experiments import run_experiment


def test_summary_findings(benchmark, dataset):
    result = benchmark(run_experiment, "Section IV-E", dataset)
    report_experiment(result)
    assert 45.0 <= result.measured["fat_to_isolated_reduction_pct"] <= 70.0
    assert result.measured["pairs_with_at_most_one_pct"] > 50.0
    assert result.measured["driver_share_pct"] < 2.0
    assert result.measured["top_group"] == ("Debian", "OpenBSD", "Solaris", "Windows2003")
