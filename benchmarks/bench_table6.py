"""Table VI -- common vulnerabilities between Debian and RedHat releases."""

from conftest import report_experiment

from repro.reports.experiments import run_experiment


def test_table6_release_level_diversity(benchmark, dataset):
    result = benchmark(run_experiment, "Table VI", dataset)
    report_experiment(result)
    print(result.rendering)
    assert result.measured == result.paper_values
