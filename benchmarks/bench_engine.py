"""Bitset incidence engine vs naive set re-intersection.

Two corpora are exercised:

* the **paper-sized** calibrated corpus (11 OSes, ~2.2k entries), where both
  engines run the full workload and must agree entry for entry;
* a **scaled** 100-OS catalogue (10 families x 10 releases, 4000 entries)
  from :func:`repro.synthetic.generator.generate_scaled_catalogue`, where the
  bitset engine runs ``per_combination_totals(k=4)`` over all ~3.9 million
  combinations and the naive engine's full cost is extrapolated from a
  400-combination sample (its cost is strictly per-combination, so the
  extrapolation is exact up to sampling noise; set ``BENCH_ENGINE_FULL=1``
  to run the naive engine over all combinations instead and wait ~2-3
  minutes).

Run the paper-sized smoke subset (what CI does)::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q -k paper

or the full comparison, including the 100-OS speedup gate::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q
"""

from __future__ import annotations

import itertools
import os
import random
import time

from repro.analysis.ksets import KSetAnalysis
from repro.analysis.pairs import PairAnalysis
from repro.analysis.selection import ReplicaSetSelector
from repro.core.enums import ServerConfiguration
from repro.synthetic.generator import generate_scaled_catalogue

SPEEDUP_FLOOR = 10.0  # acceptance gate for k=4 on the 100-OS catalogue


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


# ---------------------------------------------------------------------------
# paper-sized corpus (CI smoke subset: -k paper)
# ---------------------------------------------------------------------------


def test_paper_sized_pair_matrix_agrees_and_speeds_up(dataset):
    """Full Table III pair matrices: identical values, bitset at least as fast."""
    fast = dataset.with_engine("bitset")
    naive = dataset.with_engine("naive")
    fast.incidence  # build outside the timed region: the index is per-dataset
    timings = {}
    for configuration in ServerConfiguration:
        fast_matrix, fast_s = _timed(
            PairAnalysis(fast).shared_matrix, configuration
        )
        naive_matrix, naive_s = _timed(
            PairAnalysis(naive).shared_matrix, configuration
        )
        assert fast_matrix == naive_matrix
        timings[configuration.value] = (naive_s, fast_s)
    print("\n=== paper-sized pair matrix (55 pairs, naive vs bitset) ===")
    for name, (naive_s, fast_s) in timings.items():
        print(f"  {name:24s} naive={naive_s * 1e3:7.2f}ms  bitset={fast_s * 1e3:7.2f}ms  "
              f"x{naive_s / fast_s:6.1f}")


def test_paper_sized_ksets_agree(dataset):
    """k=4 over the 11-OS catalogue: both engines, identical totals."""
    fast = dataset.with_engine("bitset")
    naive = dataset.with_engine("naive")
    fast_totals, fast_s = _timed(
        KSetAnalysis(fast, ServerConfiguration.FAT).per_combination_totals, 4
    )
    naive_totals, naive_s = _timed(
        KSetAnalysis(naive, ServerConfiguration.FAT).per_combination_totals, 4
    )
    assert fast_totals == naive_totals
    print(f"\n=== paper-sized k=4 totals ({len(fast_totals)} combos) ===")
    print(f"  naive={naive_s * 1e3:.1f}ms  bitset={fast_s * 1e3:.1f}ms  "
          f"x{naive_s / fast_s:.1f}")


def test_paper_sized_selection_agrees(dataset):
    """All three strategies give the same groups on both engines."""
    results = {}
    for engine in ("bitset", "naive"):
        view = dataset.with_engine(engine).valid()
        selector, build_s = _timed(ReplicaSetSelector, dataset=view)
        exhaustive, search_s = _timed(selector.exhaustive, 4, 3)
        results[engine] = (
            [(r.os_names, r.pairwise_shared) for r in exhaustive],
            selector.greedy(4).os_names,
            selector.graph_based(4).os_names,
            build_s,
            search_s,
        )
    assert results["bitset"][:3] == results["naive"][:3]
    print("\n=== paper-sized selection (matrix build + exhaustive n=4 top=3) ===")
    for engine, (_, _, _, build_s, search_s) in results.items():
        print(f"  {engine:7s} build={build_s * 1e3:7.2f}ms  search={search_s * 1e3:7.2f}ms")


# ---------------------------------------------------------------------------
# scaled 100-OS catalogue (the acceptance gate)
# ---------------------------------------------------------------------------


def test_scaled_catalogue_k4_speedup():
    """k=4 on a 100-OS catalogue: bitset must beat naive by >= 10x."""
    catalogue = generate_scaled_catalogue(n_families=10, releases_per_family=10)
    assert len(catalogue.os_names) == 100

    fast = catalogue.dataset(engine="bitset")
    analysis = KSetAnalysis(fast, ServerConfiguration.FAT, catalogue.os_names)
    totals, bitset_s = _timed(analysis.per_combination_totals, 4)
    n_combos = len(totals)
    nonzero = sum(1 for value in totals.values() if value)

    naive_view = (
        catalogue.dataset(engine="naive").valid().filtered(ServerConfiguration.FAT)
    )
    if os.environ.get("BENCH_ENGINE_FULL"):
        naive_analysis = KSetAnalysis(
            catalogue.dataset(engine="naive"), ServerConfiguration.FAT, catalogue.os_names
        )
        naive_totals, naive_s = _timed(naive_analysis.per_combination_totals, 4)
        assert naive_totals == totals
        naive_label = "measured"
    else:
        rng = random.Random(1)
        sample = [tuple(rng.sample(catalogue.os_names, 4)) for _ in range(400)]
        _, sample_s = _timed(lambda: [naive_view.shared_count(c) for c in sample])
        naive_s = sample_s / len(sample) * n_combos
        naive_label = f"extrapolated from {len(sample)} combos"
        # The sampled combinations must agree across engines.
        fast_view = fast.valid().filtered(ServerConfiguration.FAT)
        assert all(
            naive_view.shared_count(c) == fast_view.shared_count(c) for c in sample
        )

    speedup = naive_s / bitset_s
    print(f"\n=== scaled catalogue: per_combination_totals(k=4), 100 OSes ===")
    print(f"  combinations: {n_combos} ({nonzero} with shared vulnerabilities)")
    print(f"  bitset: {bitset_s:6.2f}s   naive: {naive_s:7.1f}s ({naive_label})")
    print(f"  speedup: x{speedup:.1f}  (floor: x{SPEEDUP_FLOOR:.0f})")
    assert speedup >= SPEEDUP_FLOOR


def test_scaled_catalogue_pair_matrix_equivalence():
    """Full 4950-pair matrix on 100 OSes: engines agree, bitset is faster."""
    catalogue = generate_scaled_catalogue(n_families=10, releases_per_family=10)
    fast = catalogue.dataset(engine="bitset")
    naive = catalogue.dataset(engine="naive")
    fast.incidence
    pairs = list(itertools.combinations(catalogue.os_names, 2))
    fast_matrix, fast_s = _timed(fast.incidence.pair_matrix, catalogue.os_names)
    naive_matrix, naive_s = _timed(
        lambda: {pair: naive.shared_count(pair) for pair in pairs}
    )
    assert fast_matrix == naive_matrix
    print(f"\n=== scaled catalogue: pair matrix ({len(pairs)} pairs) ===")
    print(f"  naive={naive_s * 1e3:7.1f}ms  bitset={fast_s * 1e3:7.1f}ms  "
          f"x{naive_s / fast_s:.1f}")
    assert fast_s < naive_s


def test_scaled_catalogue_selection_strategies():
    """Replica selection on 100 candidates: strategies agree on the optimum score."""
    catalogue = generate_scaled_catalogue(n_families=10, releases_per_family=10)
    selector, build_s = _timed(
        ReplicaSetSelector, dataset=catalogue.dataset(), candidates=catalogue.os_names
    )
    best, search_s = _timed(lambda: selector.exhaustive(4, top=1)[0])
    greedy, greedy_s = _timed(selector.greedy, 4)
    graph, graph_s = _timed(selector.graph_based, 4)
    print("\n=== scaled catalogue: replica selection over 100 candidates ===")
    print(f"  matrix build: {build_s * 1e3:.1f}ms")
    print(f"  exhaustive (branch-and-bound): {search_s * 1e3:8.1f}ms  score={best.pairwise_shared}")
    print(f"  greedy:                        {greedy_s * 1e3:8.1f}ms  score={greedy.pairwise_shared}")
    print(f"  graph:                         {graph_s * 1e3:8.1f}ms  score={graph.pairwise_shared}")
    assert best.pairwise_shared == 0  # a 100-OS catalogue has fully disjoint 4-sets
    assert best.pairwise_shared <= greedy.pairwise_shared
    assert best.pairwise_shared <= graph.pairwise_shared
