"""Serving-layer load generator: warm-cache throughput and delta freshness.

The service's acceptance criteria, held on a live server (real sockets,
threaded clients):

* **throughput** -- on a 100-OS scaled catalogue, warm digest-cache
  throughput (registry + response cache populated) is at least ``10x``
  cold-compile throughput (both caches cleared before every request, so
  each request pays the full corpus compile);
* **latency** -- warm p50 is reported alongside both throughputs, so
  regressions are visible in CI logs even before a gate trips;
* **freshness** -- after an incremental delta lands, a request presenting
  the pre-delta ``ETag`` for a *touched* scope misses revalidation and is
  answered fresh -- with no server restart -- while an untouched scope
  keeps its ``304``.

Run the smoke subset (what CI does)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q -s -k smoke

The same tests constitute the full gate; the suffix only mirrors the
other benchmarks' CI convention.
"""

from __future__ import annotations

import json
import statistics
import time
import urllib.error
import urllib.request

import pytest

from repro.classify.filters import ServerConfigurationFilter
from repro.core.enums import ServerConfiguration
from repro.db.database import VulnerabilityDatabase
from repro.db.ingest import IngestPipeline
from repro.service import (
    DiversityService,
    ServiceConfig,
    ServiceServer,
    SnapshotDatasetProvider,
    StaticDatasetProvider,
)
from repro.snapshots.delta import DeltaIngestPipeline
from repro.snapshots.store import SnapshotStore
from repro.synthetic.evolution import evolve_corpus
from repro.synthetic.generator import generate_scaled_catalogue

#: Acceptance gate: warm digest-cache vs cold-compile throughput.
WARM_SPEEDUP_FLOOR = 10.0

#: Request counts: cold requests pay a full 100-OS compile each, so a
#: handful suffices; warm requests are cheap, so many sharpen the p50.
COLD_REQUESTS = 5
WARM_REQUESTS = 200


def _get(base_url: str, path: str, etag=None):
    headers = {"If-None-Match": etag} if etag else {}
    request = urllib.request.Request(base_url + path, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture(scope="module")
def scaled_server():
    """A live server over the 100-OS scaled catalogue."""
    catalogue = generate_scaled_catalogue()  # 10 families x 10 releases
    app = DiversityService(
        ServiceConfig(),
        StaticDatasetProvider(
            catalogue.entries, os_names=catalogue.os_names,
            label="scaled catalogue (100 OS)",
        ),
    )
    service = ServiceServer(app)
    base_url = service.start()
    yield base_url, app, catalogue
    service.stop()


def test_service_smoke_warm_cache_throughput(scaled_server):
    """Warm digest-cache throughput >= 10x cold-compile throughput."""
    base_url, app, catalogue = scaled_server
    path = "/v1/shared?os=" + ",".join(catalogue.os_names[:3])

    # Cold: every request recompiles the corpus from scratch.
    cold_latencies = []
    for _ in range(COLD_REQUESTS):
        app.reset_caches()
        started = time.perf_counter()
        status, _headers, _body = _get(base_url, path)
        cold_latencies.append(time.perf_counter() - started)
        assert status == 200
    cold_throughput = COLD_REQUESTS / sum(cold_latencies)

    # Warm: the registry holds the compiled corpus, the response cache the
    # rendered bytes.  One priming request, then the measured volley.
    status, _headers, reference = _get(base_url, path)
    assert status == 200
    warm_latencies = []
    for _ in range(WARM_REQUESTS):
        started = time.perf_counter()
        status, _headers, body = _get(base_url, path)
        warm_latencies.append(time.perf_counter() - started)
        assert status == 200
        assert body == reference  # warm hits are byte-identical
    warm_throughput = WARM_REQUESTS / sum(warm_latencies)
    speedup = warm_throughput / cold_throughput

    print(f"\n=== service: warm vs cold throughput "
          f"({len(catalogue.os_names)} OSes, {len(catalogue.entries)} entries) ===")
    print(f"  cold (compile per request): {cold_throughput:8.1f} req/s "
          f"(p50 {statistics.median(cold_latencies) * 1e3:7.2f}ms)")
    print(f"  warm (digest-keyed caches): {warm_throughput:8.1f} req/s "
          f"(p50 {statistics.median(warm_latencies) * 1e3:7.2f}ms)")
    print(f"  speedup                   : {speedup:8.1f}x "
          f"(floor {WARM_SPEEDUP_FLOOR}x)")
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm-cache speedup {speedup:.1f}x below the "
        f"{WARM_SPEEDUP_FLOOR}x acceptance floor"
    )


def test_service_smoke_post_delta_freshness(corpus, tmp_path_factory):
    """A delta makes touched ETags stale -- fresh answers, no restart."""
    root = tmp_path_factory.mktemp("service-bench")
    db_path = root / "serve.db"
    database = VulnerabilityDatabase(db_path)
    pipeline = IngestPipeline(database=database)
    pipeline.ingest_raw(corpus.to_raw_feed_entries())
    SnapshotStore(database).commit(source="full ingest")

    app = DiversityService(
        ServiceConfig(db=str(db_path)), SnapshotDatasetProvider(str(db_path))
    )
    service = ServiceServer(app)
    base_url = service.start()
    try:
        windows = {"Windows2000", "Windows2003", "Windows2008"}
        debian_path = "/v1/shared?os=Debian,OpenBSD"
        windows_path = "/v1/shared?os=Windows2000,Windows2003"
        status, headers, debian_before = _get(base_url, debian_path)
        assert status == 200
        debian_etag = headers["ETag"]
        status, headers, _body = _get(base_url, windows_path)
        windows_etag = headers["ETag"]
        compiles_before = app.registry.compile_count

        # Land a Debian-only delta on the database the server is serving.
        admits = ServerConfigurationFilter(ServerConfiguration.ISOLATED_THIN).admits
        delta = evolve_corpus(
            corpus, fraction=0.005, seed=47, target_os="Debian",
            entry_filter=lambda entry: admits(entry)
            and not entry.affected_os & windows,
        )
        report = DeltaIngestPipeline(pipeline, SnapshotStore(database)).apply_raw(
            delta.entries, source="bench delta"
        )
        assert report.modified > 0

        # Touched scope: the stale ETag misses and fresh bytes arrive.
        status, headers, debian_after = _get(
            base_url, debian_path, etag=debian_etag
        )
        assert status == 200
        assert headers["ETag"] != debian_etag
        assert debian_after != debian_before
        assert app.registry.compile_count == compiles_before + 1

        # Untouched scope: the pre-delta ETag still revalidates to 304.
        status, headers, body = _get(base_url, windows_path, etag=windows_etag)
        assert status == 304
        assert body == b""

        print("\n=== service: post-delta freshness ===")
        print(f"  delta        : ~{report.modified} modified (Debian-scoped)")
        print(f"  touched scope: stale ETag -> 200 with fresh payload")
        print(f"  untouched    : old ETag -> 304 (no recompute)")
    finally:
        service.stop()
        database.close()


def test_service_smoke_job_throughput(scaled_server):
    """Submitting a job never blocks queries: the 202 returns immediately."""
    base_url, app, catalogue = scaled_server
    body = json.dumps(
        {
            "configurations": {"quad": list(catalogue.os_names[:4])},
            "runs": 50,
            "horizon": 2.0,
        }
    ).encode("utf-8")
    request = urllib.request.Request(
        base_url + "/v1/simulations", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    started = time.perf_counter()
    with urllib.request.urlopen(request, timeout=60) as response:
        assert response.status == 202
        job_id = json.loads(response.read())["job_id"]
    submit_latency = time.perf_counter() - started

    # Queries stay fast while the job runs in the background.
    status, _headers, _body = _get(base_url, "/healthz")
    assert status == 200
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        status, _headers, payload = _get(base_url, f"/v1/jobs/{job_id}")
        state = json.loads(payload)["state"]
        if state in ("done", "failed"):
            break
        time.sleep(0.05)
    assert state == "done"
    print(f"\n=== service: background job ===")
    print(f"  submit -> 202 in {submit_latency * 1e3:.2f}ms; "
          f"job finished as {state!r}")
