"""Serving-layer load generator: warm-cache throughput and delta freshness.

The service's acceptance criteria, held on a live server (real sockets,
threaded clients):

* **throughput** -- on a 100-OS scaled catalogue, warm digest-cache
  throughput (registry + response cache populated) is at least ``10x``
  cold-compile throughput (both caches cleared before every request, so
  each request pays the full corpus compile);
* **latency** -- warm p50 is reported alongside both throughputs, so
  regressions are visible in CI logs even before a gate trips;
* **freshness** -- after an incremental delta lands, a request presenting
  the pre-delta ``ETag`` for a *touched* scope misses revalidation and is
  answered fresh -- with no server restart -- while an untouched scope
  keeps its ``304``.

Run the smoke subset (what CI does)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q -s -k smoke

The same tests constitute the full gate; the suffix only mirrors the
other benchmarks' CI convention.
"""

from __future__ import annotations

import itertools
import json
import os
import statistics
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.classify.filters import ServerConfigurationFilter
from repro.core.enums import ServerConfiguration
from repro.db.database import VulnerabilityDatabase
from repro.db.ingest import IngestPipeline
from repro.service import (
    DiversityService,
    ServiceCluster,
    ServiceConfig,
    ServiceServer,
    SnapshotDatasetProvider,
    StaticDatasetProvider,
)
from repro.snapshots.delta import DeltaIngestPipeline
from repro.snapshots.store import SnapshotStore
from repro.synthetic.evolution import evolve_corpus
from repro.synthetic.generator import generate_scaled_catalogue

#: Acceptance gate: warm digest-cache vs cold-compile throughput.
WARM_SPEEDUP_FLOOR = 10.0

#: Acceptance gate: aggregate throughput at SCALING_WORKERS processes vs 1.
SCALING_SPEEDUP_FLOOR = 3.0
SCALING_WORKERS = 4

#: Request counts: cold requests pay a full 100-OS compile each, so a
#: handful suffices; warm requests are cheap, so many sharpen the p50.
COLD_REQUESTS = 5
WARM_REQUESTS = 200


def _get(base_url: str, path: str, etag=None):
    headers = {"If-None-Match": etag} if etag else {}
    request = urllib.request.Request(base_url + path, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture(scope="module")
def scaled_server():
    """A live server over the 100-OS scaled catalogue."""
    catalogue = generate_scaled_catalogue()  # 10 families x 10 releases
    app = DiversityService(
        ServiceConfig(),
        StaticDatasetProvider(
            catalogue.entries, os_names=catalogue.os_names,
            label="scaled catalogue (100 OS)",
        ),
    )
    service = ServiceServer(app)
    base_url = service.start()
    yield base_url, app, catalogue
    service.stop()


def test_service_smoke_warm_cache_throughput(scaled_server):
    """Warm digest-cache throughput >= 10x cold-compile throughput."""
    base_url, app, catalogue = scaled_server
    path = "/v1/shared?os=" + ",".join(catalogue.os_names[:3])

    # Cold: every request recompiles the corpus from scratch.
    cold_latencies = []
    for _ in range(COLD_REQUESTS):
        app.reset_caches()
        started = time.perf_counter()
        status, _headers, _body = _get(base_url, path)
        cold_latencies.append(time.perf_counter() - started)
        assert status == 200
    cold_throughput = COLD_REQUESTS / sum(cold_latencies)

    # Warm: the registry holds the compiled corpus, the response cache the
    # rendered bytes.  One priming request, then the measured volley.
    status, _headers, reference = _get(base_url, path)
    assert status == 200
    warm_latencies = []
    for _ in range(WARM_REQUESTS):
        started = time.perf_counter()
        status, _headers, body = _get(base_url, path)
        warm_latencies.append(time.perf_counter() - started)
        assert status == 200
        assert body == reference  # warm hits are byte-identical
    warm_throughput = WARM_REQUESTS / sum(warm_latencies)
    speedup = warm_throughput / cold_throughput

    print(f"\n=== service: warm vs cold throughput "
          f"({len(catalogue.os_names)} OSes, {len(catalogue.entries)} entries) ===")
    print(f"  cold (compile per request): {cold_throughput:8.1f} req/s "
          f"(p50 {statistics.median(cold_latencies) * 1e3:7.2f}ms)")
    print(f"  warm (digest-keyed caches): {warm_throughput:8.1f} req/s "
          f"(p50 {statistics.median(warm_latencies) * 1e3:7.2f}ms)")
    print(f"  speedup                   : {speedup:8.1f}x "
          f"(floor {WARM_SPEEDUP_FLOOR}x)")
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm-cache speedup {speedup:.1f}x below the "
        f"{WARM_SPEEDUP_FLOOR}x acceptance floor"
    )


def test_service_smoke_post_delta_freshness(corpus, tmp_path_factory):
    """A delta makes touched ETags stale -- fresh answers, no restart."""
    root = tmp_path_factory.mktemp("service-bench")
    db_path = root / "serve.db"
    database = VulnerabilityDatabase(db_path)
    pipeline = IngestPipeline(database=database)
    pipeline.ingest_raw(corpus.to_raw_feed_entries())
    SnapshotStore(database).commit(source="full ingest")

    app = DiversityService(
        ServiceConfig(db=str(db_path)), SnapshotDatasetProvider(str(db_path))
    )
    service = ServiceServer(app)
    base_url = service.start()
    try:
        windows = {"Windows2000", "Windows2003", "Windows2008"}
        debian_path = "/v1/shared?os=Debian,OpenBSD"
        windows_path = "/v1/shared?os=Windows2000,Windows2003"
        status, headers, debian_before = _get(base_url, debian_path)
        assert status == 200
        debian_etag = headers["ETag"]
        status, headers, _body = _get(base_url, windows_path)
        windows_etag = headers["ETag"]
        compiles_before = app.registry.compile_count

        # Land a Debian-only delta on the database the server is serving.
        admits = ServerConfigurationFilter(ServerConfiguration.ISOLATED_THIN).admits
        delta = evolve_corpus(
            corpus, fraction=0.005, seed=47, target_os="Debian",
            entry_filter=lambda entry: admits(entry)
            and not entry.affected_os & windows,
        )
        report = DeltaIngestPipeline(pipeline, SnapshotStore(database)).apply_raw(
            delta.entries, source="bench delta"
        )
        assert report.modified > 0

        # Touched scope: the stale ETag misses and fresh bytes arrive.
        status, headers, debian_after = _get(
            base_url, debian_path, etag=debian_etag
        )
        assert status == 200
        assert headers["ETag"] != debian_etag
        assert debian_after != debian_before
        assert app.registry.compile_count == compiles_before + 1

        # Untouched scope: the pre-delta ETag still revalidates to 304.
        status, headers, body = _get(base_url, windows_path, etag=windows_etag)
        assert status == 304
        assert body == b""

        print("\n=== service: post-delta freshness ===")
        print(f"  delta        : ~{report.modified} modified (Debian-scoped)")
        print(f"  touched scope: stale ETag -> 200 with fresh payload")
        print(f"  untouched    : old ETag -> 304 (no recompute)")
    finally:
        service.stop()
        database.close()


def test_service_smoke_job_throughput(scaled_server):
    """Submitting a job never blocks queries: the 202 returns immediately."""
    base_url, app, catalogue = scaled_server
    body = json.dumps(
        {
            "configurations": {"quad": list(catalogue.os_names[:4])},
            "runs": 50,
            "horizon": 2.0,
        }
    ).encode("utf-8")
    request = urllib.request.Request(
        base_url + "/v1/simulations", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    started = time.perf_counter()
    with urllib.request.urlopen(request, timeout=60) as response:
        assert response.status == 202
        job_id = json.loads(response.read())["job_id"]
    submit_latency = time.perf_counter() - started

    # Queries stay fast while the job runs in the background.
    status, _headers, _body = _get(base_url, "/healthz")
    assert status == 200
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        status, _headers, payload = _get(base_url, f"/v1/jobs/{job_id}")
        state = json.loads(payload)["state"]
        if state in ("done", "failed"):
            break
        time.sleep(0.05)
    assert state == "done"
    print(f"\n=== service: background job ===")
    print(f"  submit -> 202 in {submit_latency * 1e3:.2f}ms; "
          f"job finished as {state!r}")


# ---------------------------------------------------------------------------
# multi-worker deployment gates
# ---------------------------------------------------------------------------


def _hammer(base_url, paths, threads, requests_per_thread):
    """Aggregate req/s from ``threads`` concurrent clients cycling ``paths``."""
    latencies = []
    failures = []
    lock = threading.Lock()

    def worker(offset):
        local = []
        for index in range(requests_per_thread):
            path = paths[(offset + index * threads) % len(paths)]
            started = time.perf_counter()
            status, _headers, _body = _get(base_url, path)
            local.append(time.perf_counter() - started)
            if status != 200:
                with lock:
                    failures.append((path, status))
        with lock:
            latencies.extend(local)

    clients = [
        threading.Thread(target=worker, args=(offset,))
        for offset in range(threads)
    ]
    started = time.perf_counter()
    for client in clients:
        client.start()
    for client in clients:
        client.join()
    elapsed = time.perf_counter() - started
    assert not failures, f"non-200 responses under load: {failures[:5]}"
    return (threads * requests_per_thread) / elapsed, latencies


def test_service_smoke_cluster_byte_identity():
    """workers=1 and workers=2 deployments answer with identical bytes."""
    config = ServiceConfig(
        port=0, workers=2, catalogue="scaled:10x10", drain_grace=5.0
    )
    single = DiversityService(ServiceConfig(catalogue="scaled:10x10"))
    paths = ("/v1/matrix/pairs", "/v1/matrix/ksets?k=3&top=5")
    with ServiceCluster(config) as cluster:
        for path in paths:
            status, _headers, body = _get(cluster.base_url, path)
            assert status == 200
            from urllib.parse import parse_qs, urlsplit

            from repro.service import HttpRequest

            parts = urlsplit(path)
            reference = single.dispatch(
                HttpRequest(
                    method="GET", path=parts.path,
                    query={
                        name: tuple(values)
                        for name, values in parse_qs(parts.query).items()
                    },
                    headers={},
                )
            )
            assert body == reference.body, f"{path} diverged from single-process"
    print("\n=== service: cluster byte identity ===")
    print(f"  {len(paths)} matrix payloads identical across workers=1 vs 2")


@pytest.mark.skipif(
    (os.cpu_count() or 1) < SCALING_WORKERS,
    reason=f"scaling gate needs >= {SCALING_WORKERS} cores to mean anything",
)
def test_service_scaling_aggregate_throughput():
    """Aggregate throughput at 4 workers >= 3x a single worker's.

    The workload is CPU-bound and response-cache-hostile: hundreds of
    distinct ``os=`` triples over the 100-OS catalogue, so every request
    computes a scoped digest and a shared-vulnerability listing instead
    of replaying cached bytes.
    """
    catalogue = generate_scaled_catalogue()  # 10 families x 10 releases
    paths = [
        "/v1/shared?os=" + ",".join(combo)
        for combo in itertools.islice(
            itertools.combinations(catalogue.os_names, 3), 0, 16000, 25
        )
    ]  # 640 distinct triples
    threads, per_thread = 8, 50

    throughputs = {}
    for workers in (1, SCALING_WORKERS):
        config = ServiceConfig(
            port=0, workers=workers, catalogue="scaled:10x10", drain_grace=5.0
        )
        with ServiceCluster(config) as cluster:
            _get(cluster.base_url, paths[0])  # prime the compile
            throughput, latencies = _hammer(
                cluster.base_url, paths, threads, per_thread
            )
            throughputs[workers] = (throughput, statistics.median(latencies))

    speedup = throughputs[SCALING_WORKERS][0] / throughputs[1][0]
    print(f"\n=== service: {SCALING_WORKERS}-worker scaling "
          f"({len(paths)} distinct scopes, {threads} client threads) ===")
    for workers, (throughput, p50) in sorted(throughputs.items()):
        print(f"  workers={workers}: {throughput:8.1f} req/s "
              f"(p50 {p50 * 1e3:7.2f}ms)")
    print(f"  speedup : {speedup:8.2f}x (floor {SCALING_SPEEDUP_FLOOR}x)")
    assert speedup >= SCALING_SPEEDUP_FLOOR, (
        f"{SCALING_WORKERS}-worker speedup {speedup:.2f}x below the "
        f"{SCALING_SPEEDUP_FLOOR}x acceptance floor"
    )


def test_service_smoke_zero_stale_etags_under_delta(corpus, tmp_path_factory):
    """Concurrent readers never see a stale ETag after a delta lands.

    Two workers share one snapshot ledger; reader threads hammer both
    internal listeners presenting the pre-delta ETag for a touched scope
    while the delta is ingested on worker 0.  Every response observed
    after the ingest call returned must be a fresh 200 with a new ETag --
    a 304 against the stale ETag would be a stale read.
    """
    root = tmp_path_factory.mktemp("cluster-bench")
    db_path = root / "serve.db"
    database = VulnerabilityDatabase(db_path)
    pipeline = IngestPipeline(database=database)
    pipeline.ingest_raw(corpus.to_raw_feed_entries())
    SnapshotStore(database).commit(source="full ingest")
    database.close()

    config = ServiceConfig(port=0, workers=2, db=str(db_path), drain_grace=10.0)
    cluster = ServiceCluster(config)
    cluster.start()
    try:
        touched_path = "/v1/shared?os=Debian,OpenBSD"
        etags = {}
        for url in cluster.internal_urls:
            status, headers, _body = _get(url, touched_path)
            assert status == 200
            etags[url] = headers["ETag"]
        assert len(set(etags.values())) == 1
        stale_etag = next(iter(etags.values()))

        observations = []
        lock = threading.Lock()
        stop = threading.Event()

        def reader(url):
            while not stop.is_set():
                status, headers, _body = _get(url, touched_path, etag=stale_etag)
                with lock:
                    observations.append(
                        (time.monotonic(), url, status, headers.get("ETag"))
                    )

        readers = [
            threading.Thread(target=reader, args=(url,))
            for url in cluster.internal_urls
            for _ in range(2)
        ]
        for thread in readers:
            thread.start()

        windows = {"Windows2000", "Windows2003", "Windows2008"}
        admits = ServerConfigurationFilter(ServerConfiguration.ISOLATED_THIN).admits
        delta = evolve_corpus(
            corpus, fraction=0.005, seed=47, target_os="Debian",
            entry_filter=lambda entry: admits(entry)
            and not entry.affected_os & windows,
        )
        feed = delta.write_feed(root / "delta.xml")
        request = urllib.request.Request(
            cluster.internal_urls[0] + "/v1/ingest/delta",
            data=feed.read_bytes(),
            headers={"Content-Type": "application/xml"}, method="POST",
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            report = json.loads(response.read())
        ingest_done = time.monotonic()
        assert report["modified"] > 0

        time.sleep(0.5)  # let the readers observe the post-ingest world
        stop.set()
        for thread in readers:
            thread.join(timeout=30)

        after = [obs for obs in observations if obs[0] > ingest_done]
        stale_hits = [
            obs for obs in after
            if obs[2] == 304 or obs[3] == stale_etag
        ]
        assert after, "no reader observations after the ingest completed"
        assert not stale_hits, (
            f"{len(stale_hits)} stale ETag hits after the delta landed: "
            f"{stale_hits[:3]}"
        )
        print("\n=== service: zero stale reads under concurrent delta ===")
        print(f"  observations: {len(observations)} total, "
              f"{len(after)} after ingest, 0 stale")
    finally:
        cluster.stop()
