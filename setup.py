"""Setuptools entry point.

The pyproject.toml [project] table carries the canonical metadata; this file
exists so that ``pip install -e .`` works in offline environments whose
setuptools lacks PEP 660 editable-wheel support (no ``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'OS Diversity for Intrusion Tolerance: Myth or "
        "Reality?' (Garcia et al., DSN 2011)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.20", "networkx>=2.6"],
)
