"""Repository-level pytest configuration.

Ensures the ``src/`` layout is importable even when the package has not been
installed (useful in offline environments where ``pip install -e .`` is not
available because the ``wheel`` package is missing).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    """Register the golden-file refresh switch used by tests/test_cli_golden.py.

    ``pytest --update-golden`` rewrites the committed golden outputs under
    ``tests/golden/`` from the current CLI behaviour instead of asserting
    against them.  Registered here (the rootdir conftest) so the option
    exists no matter which test subset is collected.
    """
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/* from current output instead of comparing",
    )
